//! Span events and the pluggable telemetry sink.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::decision::DecisionRecord;
use crate::timeseries::GaugeRow;

/// Spans buffered between file flushes. Sized so a flush amortises the
/// syscall without holding a meaningful share of a run's events.
pub const SPAN_RING_CAPACITY: usize = 4096;

/// A stage in a request's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// The request reached the gateway.
    Arrival,
    /// The request was accepted into an instance's batch queue.
    Enqueued,
    /// A batch containing the request was sealed for execution.
    BatchFormed,
    /// The sealed batch began executing (emitted once per batch, keyed
    /// by the batch's first request).
    ExecStart,
    /// The request completed.
    Complete,
    /// The request was dropped at the gateway (no capacity).
    Dropped,
    /// The request was shed by the fault-recovery path.
    Shed,
    /// A fault displaced the request from its instance.
    Displaced,
    /// The displaced request was successfully re-dispatched.
    Retried,
    /// A host-cached model began swapping onto a GPU (instance-scoped:
    /// keyed by a synthetic instance request id, not a real request).
    SwapBegin,
    /// The swap finished and the instance became ready.
    SwapComplete,
    /// An autoregressive sequence was admitted and its prompt prefill
    /// began (for continuous joiners: folded into the next decode step).
    PrefillStart,
    /// The sequence's first output token landed (end of its prefill) —
    /// the TTFT mark.
    FirstToken,
    /// The sequence decoded its last output token. A terminal
    /// [`SpanKind::Complete`] still follows, so span-conservation
    /// invariants hold unchanged for autoregressive requests.
    DecodeComplete,
}

impl SpanKind {
    /// Stable wire name (the JSONL `kind` field).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Arrival => "arrival",
            SpanKind::Enqueued => "enqueued",
            SpanKind::BatchFormed => "batch_formed",
            SpanKind::ExecStart => "exec_start",
            SpanKind::Complete => "complete",
            SpanKind::Dropped => "dropped",
            SpanKind::Shed => "shed",
            SpanKind::Displaced => "displaced",
            SpanKind::Retried => "retried",
            SpanKind::SwapBegin => "swap_begin",
            SpanKind::SwapComplete => "swap_complete",
            SpanKind::PrefillStart => "prefill_start",
            SpanKind::FirstToken => "first_token",
            SpanKind::DecodeComplete => "decode_complete",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "arrival" => SpanKind::Arrival,
            "enqueued" => SpanKind::Enqueued,
            "batch_formed" => SpanKind::BatchFormed,
            "exec_start" => SpanKind::ExecStart,
            "complete" => SpanKind::Complete,
            "dropped" => SpanKind::Dropped,
            "shed" => SpanKind::Shed,
            "displaced" => SpanKind::Displaced,
            "retried" => SpanKind::Retried,
            "swap_begin" => SpanKind::SwapBegin,
            "swap_complete" => SpanKind::SwapComplete,
            "prefill_start" => SpanKind::PrefillStart,
            "first_token" => SpanKind::FirstToken,
            "decode_complete" => SpanKind::DecodeComplete,
            _ => return None,
        })
    }
}

/// Which fault displaced a request (annotates [`SpanKind::Displaced`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTag {
    /// Not a fault-related span.
    None,
    /// A whole-server crash.
    ServerCrash,
    /// A single-instance kill.
    InstanceKill,
    /// An instance killed while still starting.
    ColdStartFailure,
}

impl FaultTag {
    /// Stable wire name (the JSONL `fault` field).
    pub fn name(self) -> &'static str {
        match self {
            FaultTag::None => "none",
            FaultTag::ServerCrash => "server_crash",
            FaultTag::InstanceKill => "instance_kill",
            FaultTag::ColdStartFailure => "coldstart_failure",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "none" => FaultTag::None,
            "server_crash" => FaultTag::ServerCrash,
            "instance_kill" => FaultTag::InstanceKill,
            "coldstart_failure" => FaultTag::ColdStartFailure,
            _ => return None,
        })
    }
}

/// One lifecycle span. `Copy` and all-numeric by design: recording one
/// is a struct copy into a ring buffer, never an allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// Simulated timestamp, seconds.
    pub t_s: f64,
    /// Lifecycle stage.
    pub kind: SpanKind,
    /// Request id.
    pub request: u64,
    /// Function index.
    pub function: u32,
    /// Instance id, or -1 when no instance is involved.
    pub instance: i64,
    /// Server id, or -1 when no server is involved.
    pub server: i64,
    /// Batch size for batch-scoped spans, 0 otherwise.
    pub batch: u32,
    /// Fault annotation ([`FaultTag::None`] outside the fault path).
    pub fault: FaultTag,
}

/// Run identification written as the first JSONL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Platform name ("INFless", "OpenFaaS+", "BATCH", …).
    pub platform: String,
    /// Function display names, indexed by function id.
    pub functions: Vec<String>,
}

/// Where the engine sends telemetry.
///
/// The contract that makes a disabled run bit-identical to a
/// telemetry-free one: the engine consults [`enabled`](Self::enabled)
/// before building a [`SpanEvent`] or [`GaugeRow`], and a sink must
/// never influence the simulation (no RNG draws, no event scheduling —
/// the trait gets no access to either).
///
/// Sinks are `Send` because the sharded runner moves each shard's
/// engine (and therefore its sink) onto a worker thread at every epoch.
pub trait TelemetrySink: std::fmt::Debug + Send {
    /// `false` skips span/gauge construction entirely.
    fn enabled(&self) -> bool;

    /// Called once, before any span, with the run's identity.
    fn begin(&mut self, _meta: &TraceMeta) {}

    /// Records one lifecycle span.
    fn record(&mut self, span: SpanEvent);

    /// Records one time-series gauge row.
    fn sample(&mut self, row: &GaugeRow);

    /// `false` skips decision-event construction entirely. Gated
    /// separately from [`enabled`](Self::enabled) so a decisions-only
    /// sink does not pay for span construction (and vice versa).
    fn decisions_enabled(&self) -> bool {
        false
    }

    /// Records one decision or per-request latency breakdown.
    fn record_decision(&mut self, _rec: &DecisionRecord) {}

    /// Flushes buffered output at the end of the run.
    fn finish(&mut self) {}
}

/// The default sink: telemetry off.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _span: SpanEvent) {}

    fn sample(&mut self, _row: &GaugeRow) {}
}

/// Everything a [`MemorySink`] captured.
#[derive(Debug, Default)]
pub struct MemoryStore {
    /// The run identity, once `begin` has been called.
    pub meta: Option<TraceMeta>,
    /// Every recorded span, in emission order.
    pub spans: Vec<SpanEvent>,
    /// Every sampled gauge row, in emission order.
    pub rows: Vec<GaugeRow>,
    /// Every recorded decision/breakdown, in emission order.
    pub decisions: Vec<DecisionRecord>,
}

/// An in-memory sink for tests: clone the handle, give one clone to the
/// platform, and read the shared store through the other after the run.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    store: Arc<Mutex<MemoryStore>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Read access to everything captured so far.
    ///
    /// # Panics
    ///
    /// Panics if a clone of this sink poisoned the store by panicking
    /// mid-record (the engine never holds the lock across a call
    /// boundary).
    pub fn store(&self) -> MutexGuard<'_, MemoryStore> {
        self.store.lock().expect("telemetry store poisoned")
    }
}

impl TelemetrySink for MemorySink {
    fn enabled(&self) -> bool {
        true
    }

    fn begin(&mut self, meta: &TraceMeta) {
        self.store().meta = Some(meta.clone());
    }

    fn record(&mut self, span: SpanEvent) {
        self.store().spans.push(span);
    }

    fn sample(&mut self, row: &GaugeRow) {
        self.store().rows.push(row.clone());
    }

    fn decisions_enabled(&self) -> bool {
        true
    }

    fn record_decision(&mut self, rec: &DecisionRecord) {
        self.store().decisions.push(*rec);
    }
}

/// A decisions-only sink buffering into a shared store — how the
/// sharded runner taps each shard's decision stream without enabling
/// span telemetry (which the epoch-barrier path rejects). The
/// coordinator drains the buffers at every barrier and merges them in
/// [`DecisionRecord::sort_key`] order.
#[derive(Debug, Clone, Default)]
pub struct DecisionBufferSink {
    buf: Arc<Mutex<Vec<DecisionRecord>>>,
}

impl DecisionBufferSink {
    /// An empty buffer sink; clone the handle before installing it.
    pub fn new() -> Self {
        DecisionBufferSink::default()
    }

    /// Drains everything buffered so far, in emission order.
    ///
    /// # Panics
    ///
    /// Panics if a clone poisoned the buffer by panicking mid-record.
    pub fn drain(&self) -> Vec<DecisionRecord> {
        std::mem::take(&mut *self.buf.lock().expect("decision buffer poisoned"))
    }
}

impl TelemetrySink for DecisionBufferSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _span: SpanEvent) {}

    fn sample(&mut self, _row: &GaugeRow) {}

    fn decisions_enabled(&self) -> bool {
        true
    }

    fn record_decision(&mut self, rec: &DecisionRecord) {
        self.buf
            .lock()
            .expect("decision buffer poisoned")
            .push(*rec);
    }
}

/// A sink writing a JSONL span trace and/or a CSV time-series.
///
/// Formats:
///
/// * Trace (`--trace-out`): one JSON object per line. The first line is
///   `{"meta":{"platform":…,"functions":[…]}}`; every subsequent line
///   has the fixed keys `t_s, kind, req, fn, inst, srv, batch, fault`.
/// * Time-series (`--timeseries-out`): a CSV whose header is
///   `t_s,instances,starting,cpu_occupancy,gpu_occupancy,queue_depth,`
///   `in_flight_batches` followed by one `fn<i>_instances` column per
///   function.
///
/// Hot-path cost: recording a span is a `Copy` into a fixed-capacity
/// ring that is drained through a reused line buffer every
/// [`SPAN_RING_CAPACITY`] events — zero allocations per event after the
/// first flush.
///
/// # Panics
///
/// I/O failures while writing panic (this sink exists to produce the
/// artifact; a silently truncated trace would be worse than a loud
/// abort).
#[derive(Debug)]
pub struct FileSink {
    trace: Option<TraceWriter>,
    timeseries: Option<TimeseriesWriter>,
    decisions: Option<DecisionsWriter>,
    functions: Vec<String>,
}

#[derive(Debug)]
struct TraceWriter {
    out: BufWriter<File>,
    ring: Vec<SpanEvent>,
    line: String,
}

#[derive(Debug)]
struct TimeseriesWriter {
    out: BufWriter<File>,
    line: String,
    wrote_header: bool,
}

#[derive(Debug)]
struct DecisionsWriter {
    out: BufWriter<File>,
    ring: Vec<DecisionRecord>,
    line: String,
}

impl FileSink {
    /// Opens the requested outputs (either may be `None`).
    ///
    /// # Errors
    ///
    /// Returns the underlying error if a file cannot be created.
    pub fn create(
        trace_path: Option<&Path>,
        timeseries_path: Option<&Path>,
    ) -> std::io::Result<FileSink> {
        let trace = match trace_path {
            Some(p) => Some(TraceWriter {
                out: BufWriter::new(File::create(p)?),
                ring: Vec::with_capacity(SPAN_RING_CAPACITY),
                line: String::with_capacity(256),
            }),
            None => None,
        };
        let timeseries = match timeseries_path {
            Some(p) => Some(TimeseriesWriter {
                out: BufWriter::new(File::create(p)?),
                line: String::with_capacity(256),
                wrote_header: false,
            }),
            None => None,
        };
        Ok(FileSink {
            trace,
            timeseries,
            decisions: None,
            functions: Vec::new(),
        })
    }

    /// Adds a decisions JSONL output (`--decisions-out`): one
    /// [`DecisionRecord`] per line after the metadata record.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the file cannot be created.
    pub fn with_decisions(mut self, path: &Path) -> std::io::Result<FileSink> {
        self.decisions = Some(DecisionsWriter {
            out: BufWriter::new(File::create(path)?),
            ring: Vec::with_capacity(SPAN_RING_CAPACITY),
            line: String::with_capacity(256),
        });
        Ok(self)
    }

    fn flush_decisions(dec: &mut DecisionsWriter) {
        for rec in &dec.ring {
            rec.render(&mut dec.line);
            dec.line.push('\n');
            dec.out
                .write_all(dec.line.as_bytes())
                .expect("write decision trace");
        }
        dec.ring.clear();
    }

    fn flush_ring(trace: &mut TraceWriter) {
        for span in &trace.ring {
            trace.line.clear();
            writeln!(
                trace.line,
                "{{\"t_s\":{},\"kind\":\"{}\",\"req\":{},\"fn\":{},\"inst\":{},\"srv\":{},\
                 \"batch\":{},\"fault\":\"{}\"}}",
                span.t_s,
                span.kind.name(),
                span.request,
                span.function,
                span.instance,
                span.server,
                span.batch,
                span.fault.name(),
            )
            .expect("write to String cannot fail");
            trace
                .out
                .write_all(trace.line.as_bytes())
                .expect("write telemetry trace");
        }
        trace.ring.clear();
    }
}

/// Renders the `{"meta":…}` record (with trailing newline) into `out`,
/// which is cleared first. Shared by the trace and decisions writers so
/// both artifacts open with an identical metadata line.
pub(crate) fn render_meta(meta: &TraceMeta, out: &mut String) {
    out.clear();
    out.push_str("{\"meta\":{\"platform\":\"");
    let mut escaped = String::new();
    escape_json(&meta.platform, &mut escaped);
    out.push_str(&escaped);
    out.push_str("\",\"functions\":[");
    for (i, name) in meta.functions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escaped.clear();
        escape_json(name, &mut escaped);
        out.push_str(&escaped);
        out.push('"');
    }
    out.push_str("]}}\n");
}

/// Minimal JSON string escaping for the metadata record (span lines
/// carry only fixed wire names and numbers, which need none).
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to String cannot fail");
            }
            c => out.push(c),
        }
    }
}

/// The fixed CSV columns before the per-function instance counts.
const TIMESERIES_HEADER: &str = "t_s,instances,starting,cpu_occupancy,gpu_occupancy,queue_depth,\
                                 in_flight_batches,kv_resident_bytes,host_cache_mb_used";

impl TelemetrySink for FileSink {
    fn enabled(&self) -> bool {
        self.trace.is_some() || self.timeseries.is_some()
    }

    fn begin(&mut self, meta: &TraceMeta) {
        self.functions = meta.functions.clone();
        if let Some(trace) = &mut self.trace {
            render_meta(meta, &mut trace.line);
            trace
                .out
                .write_all(trace.line.as_bytes())
                .expect("write telemetry trace meta");
        }
        if let Some(dec) = &mut self.decisions {
            render_meta(meta, &mut dec.line);
            dec.out
                .write_all(dec.line.as_bytes())
                .expect("write decision trace meta");
        }
        if let Some(ts) = &mut self.timeseries {
            ts.line.clear();
            ts.line.push_str(TIMESERIES_HEADER);
            for i in 0..self.functions.len() {
                write!(ts.line, ",fn{i}_instances").expect("write to String cannot fail");
            }
            ts.line.push('\n');
            ts.out
                .write_all(ts.line.as_bytes())
                .expect("write telemetry timeseries header");
            ts.wrote_header = true;
        }
    }

    fn record(&mut self, span: SpanEvent) {
        if let Some(trace) = &mut self.trace {
            trace.ring.push(span);
            if trace.ring.len() >= SPAN_RING_CAPACITY {
                Self::flush_ring(trace);
            }
        }
    }

    fn sample(&mut self, row: &GaugeRow) {
        if let Some(ts) = &mut self.timeseries {
            if !ts.wrote_header {
                // `begin` was never called (engine without metadata):
                // emit a header sized to the first row.
                ts.line.clear();
                ts.line.push_str(TIMESERIES_HEADER);
                for i in 0..row.per_function_instances.len() {
                    write!(ts.line, ",fn{i}_instances").expect("write to String cannot fail");
                }
                ts.line.push('\n');
                ts.out
                    .write_all(ts.line.as_bytes())
                    .expect("write telemetry timeseries header");
                ts.wrote_header = true;
            }
            ts.line.clear();
            write!(
                ts.line,
                "{},{},{},{:.6},{:.6},{},{},{},{:.3}",
                row.t_s,
                row.instances,
                row.starting,
                row.cpu_occupancy,
                row.gpu_occupancy,
                row.queue_depth,
                row.in_flight_batches,
                row.kv_resident_bytes,
                row.host_cache_mb_used,
            )
            .expect("write to String cannot fail");
            for n in &row.per_function_instances {
                write!(ts.line, ",{n}").expect("write to String cannot fail");
            }
            ts.line.push('\n');
            ts.out
                .write_all(ts.line.as_bytes())
                .expect("write telemetry timeseries");
        }
    }

    fn decisions_enabled(&self) -> bool {
        self.decisions.is_some()
    }

    fn record_decision(&mut self, rec: &DecisionRecord) {
        if let Some(dec) = &mut self.decisions {
            dec.ring.push(*rec);
            if dec.ring.len() >= SPAN_RING_CAPACITY {
                Self::flush_decisions(dec);
            }
        }
    }

    fn finish(&mut self) {
        if let Some(trace) = &mut self.trace {
            Self::flush_ring(trace);
            trace.out.flush().expect("flush telemetry trace");
        }
        if let Some(dec) = &mut self.decisions {
            Self::flush_decisions(dec);
            dec.out.flush().expect("flush decision trace");
        }
        if let Some(ts) = &mut self.timeseries {
            ts.out.flush().expect("flush telemetry timeseries");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(t_s: f64, kind: SpanKind, request: u64) -> SpanEvent {
        SpanEvent {
            t_s,
            kind,
            request,
            function: 0,
            instance: -1,
            server: -1,
            batch: 0,
            fault: FaultTag::None,
        }
    }

    #[test]
    fn wire_names_round_trip() {
        for kind in [
            SpanKind::Arrival,
            SpanKind::Enqueued,
            SpanKind::BatchFormed,
            SpanKind::ExecStart,
            SpanKind::Complete,
            SpanKind::Dropped,
            SpanKind::Shed,
            SpanKind::Displaced,
            SpanKind::Retried,
            SpanKind::SwapBegin,
            SpanKind::SwapComplete,
            SpanKind::PrefillStart,
            SpanKind::FirstToken,
            SpanKind::DecodeComplete,
        ] {
            assert_eq!(SpanKind::parse(kind.name()), Some(kind));
        }
        for tag in [
            FaultTag::None,
            FaultTag::ServerCrash,
            FaultTag::InstanceKill,
            FaultTag::ColdStartFailure,
        ] {
            assert_eq!(FaultTag::parse(tag.name()), Some(tag));
        }
        assert_eq!(SpanKind::parse("bogus"), None);
        assert_eq!(FaultTag::parse("bogus"), None);
    }

    #[test]
    fn memory_sink_clones_share_the_store() {
        let sink = MemorySink::new();
        let mut handle = sink.clone();
        handle.begin(&TraceMeta {
            platform: "test".into(),
            functions: vec!["f".into()],
        });
        handle.record(span(1.0, SpanKind::Arrival, 0));
        assert_eq!(sink.store().spans.len(), 1);
        assert_eq!(sink.store().meta.as_ref().unwrap().platform, "test");
    }

    /// Satellite: the enabled file path allocates zero per event after
    /// warm-up — the span ring and line buffer are filled, drained, and
    /// refilled without their capacities ever moving.
    #[test]
    fn file_sink_hot_path_reuses_buffers() {
        let dir = std::env::temp_dir();
        let trace_path = dir.join("infless-telemetry-alloc-test.jsonl");
        let mut sink = FileSink::create(Some(&trace_path), None).unwrap();
        sink.begin(&TraceMeta {
            platform: "test".into(),
            functions: vec!["f".into()],
        });
        // Warm up: one full ring, which triggers the first flush.
        for i in 0..SPAN_RING_CAPACITY {
            sink.record(span(i as f64, SpanKind::Arrival, i as u64));
        }
        let trace = sink.trace.as_ref().unwrap();
        assert!(trace.ring.is_empty(), "ring drained at capacity");
        let ring_cap = trace.ring.capacity();
        let line_cap = trace.line.capacity();
        assert_eq!(ring_cap, SPAN_RING_CAPACITY);
        // Steady state: several more rings' worth of events must not
        // grow either buffer.
        for i in 0..4 * SPAN_RING_CAPACITY {
            sink.record(span(i as f64, SpanKind::Complete, i as u64));
        }
        let trace = sink.trace.as_ref().unwrap();
        assert_eq!(trace.ring.capacity(), ring_cap, "ring buffer reallocated");
        assert_eq!(trace.line.capacity(), line_cap, "line buffer reallocated");
        sink.finish();
        let text = std::fs::read_to_string(&trace_path).unwrap();
        assert_eq!(text.lines().count(), 1 + 5 * SPAN_RING_CAPACITY);
        std::fs::remove_file(&trace_path).ok();
    }

    #[test]
    fn meta_strings_are_escaped() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\u000ad");
    }
}
