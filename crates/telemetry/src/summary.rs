//! Reading a JSONL span trace back: schema validation and the
//! span-level recomputation of the run's conservation invariants.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io::BufRead;
use std::path::Path;

use serde_json::Value;

use crate::hist::Log2Histogram;
use crate::sink::{FaultTag, SpanKind};

/// Per-function tallies recomputed from spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FunctionCounts {
    /// Arrival spans.
    pub arrivals: u64,
    /// Complete spans.
    pub completed: u64,
    /// Dropped spans.
    pub dropped: u64,
    /// Shed spans.
    pub shed: u64,
}

/// Everything `trace summary` derives from a span trace, independent of
/// the run report the trace came from.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Platform name from the metadata record.
    pub platform: String,
    /// Function names from the metadata record.
    pub functions: Vec<String>,
    /// Span lines parsed (excluding the metadata record).
    pub events: u64,
    /// Arrival spans.
    pub arrivals: u64,
    /// Enqueued spans.
    pub enqueued: u64,
    /// Batch-formed spans (one per request in each sealed batch).
    pub batches_formed: u64,
    /// Exec-start spans (one per sealed batch).
    pub exec_starts: u64,
    /// Complete spans.
    pub completed: u64,
    /// Dropped spans.
    pub dropped: u64,
    /// Shed spans.
    pub shed: u64,
    /// Displaced spans.
    pub displaced: u64,
    /// Retried spans.
    pub retried: u64,
    /// Swap-begin spans (instance-scoped, synthetic request ids).
    pub swap_begins: u64,
    /// Swap-complete spans.
    pub swap_completes: u64,
    /// Prefill-start spans (one per admitted autoregressive sequence).
    pub prefill_starts: u64,
    /// First-token spans (one per admitted sequence — TTFT marks).
    pub first_tokens: u64,
    /// Decode-complete spans (one per finished sequence; its terminal
    /// complete span follows separately).
    pub decode_completes: u64,
    /// Displaced spans per fault annotation (wire names).
    pub displaced_by_fault: BTreeMap<&'static str, u64>,
    /// Per-function tallies, indexed like `functions`.
    pub per_function: Vec<FunctionCounts>,
    /// End-to-end latency (ms) of every arrival→complete pair.
    pub latency_ms: Log2Histogram,
    /// Batch size of every exec-start span.
    pub batch_sizes: Log2Histogram,
}

impl TraceSummary {
    /// Span-form of the engine's gateway conservation law: every
    /// arrival terminated in exactly one of complete/dropped/shed.
    /// (`summarize` already rejects traces where an individual request
    /// terminates twice; this checks the totals line up too.)
    pub fn conserved(&self) -> bool {
        self.arrivals == self.completed + self.dropped + self.shed
    }

    /// Span-form of the fault-recovery conservation law
    /// `displaced == retried + shed` — recomputed from spans alone.
    pub fn displacement_balanced(&self) -> bool {
        self.displaced == self.retried + self.shed
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace: {} · {} spans", self.platform, self.events)?;
        writeln!(
            f,
            "lifecycle: {} arrivals → {} enqueued → {} batch-formed ({} batches) → {} completed",
            self.arrivals, self.enqueued, self.batches_formed, self.exec_starts, self.completed
        )?;
        writeln!(
            f,
            "terminal:  {} completed + {} dropped + {} shed (conserved: {})",
            self.completed,
            self.dropped,
            self.shed,
            self.conserved()
        )?;
        writeln!(
            f,
            "faults:    {} displaced = {} retried + {} shed (balanced: {})",
            self.displaced,
            self.retried,
            self.shed,
            self.displacement_balanced()
        )?;
        for (tag, n) in &self.displaced_by_fault {
            writeln!(f, "           displaced by {tag}: {n}")?;
        }
        if self.swap_begins + self.swap_completes > 0 {
            writeln!(
                f,
                "swaps:     {} begun, {} completed",
                self.swap_begins, self.swap_completes
            )?;
        }
        if self.prefill_starts + self.first_tokens + self.decode_completes > 0 {
            writeln!(
                f,
                "tokens:    {} prefills, {} first tokens, {} decode-completes",
                self.prefill_starts, self.first_tokens, self.decode_completes
            )?;
        }
        if !self.latency_ms.is_empty() {
            writeln!(
                f,
                "latency:   p50 {:.1} ms  p95 {:.1} ms  p99 {:.1} ms  (n = {})",
                self.latency_ms.quantile(0.5).unwrap_or(0.0),
                self.latency_ms.quantile(0.95).unwrap_or(0.0),
                self.latency_ms.quantile(0.99).unwrap_or(0.0),
                self.latency_ms.len()
            )?;
        }
        for (i, counts) in self.per_function.iter().enumerate() {
            let name = self
                .functions
                .get(i)
                .map(String::as_str)
                .unwrap_or("(unnamed)");
            writeln!(
                f,
                "fn {i} {name}: {} arrivals, {} completed, {} dropped, {} shed",
                counts.arrivals, counts.completed, counts.dropped, counts.shed
            )?;
        }
        Ok(())
    }
}

fn field_u64(obj: &Value, key: &str, line_no: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("line {line_no}: missing or non-integer \"{key}\""))
}

fn field_i64(obj: &Value, key: &str, line_no: usize) -> Result<i64, String> {
    obj.get(key)
        .and_then(Value::as_i64)
        .ok_or_else(|| format!("line {line_no}: missing or non-integer \"{key}\""))
}

fn field_f64(obj: &Value, key: &str, line_no: usize) -> Result<f64, String> {
    obj.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("line {line_no}: missing or non-numeric \"{key}\""))
}

fn field_str<'v>(obj: &'v Value, key: &str, line_no: usize) -> Result<&'v str, String> {
    obj.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("line {line_no}: missing or non-string \"{key}\""))
}

/// Parses and validates a JSONL span trace.
///
/// Validation is strict — this is what the CI schema check runs: every
/// line must parse as JSON with the fixed key set and types, the first
/// line must be the metadata record, per-request timestamps must be
/// monotone, and no request may terminate (complete/drop/shed) twice.
///
/// # Errors
///
/// Returns a description of the first violated rule.
pub fn summarize<R: BufRead>(reader: R) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    let mut arrival_at: HashMap<u64, f64> = HashMap::new();
    let mut terminated: HashMap<u64, SpanKind> = HashMap::new();
    let mut last_t: HashMap<u64, f64> = HashMap::new();
    let mut saw_meta = false;
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line.map_err(|e| format!("line {line_no}: read error: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(&line)
            .map_err(|e| format!("line {line_no}: invalid JSON: {e}"))?;
        if line_no == 1 {
            let meta = value
                .get("meta")
                .ok_or_else(|| "line 1: expected the {\"meta\":…} record".to_string())?;
            summary.platform = field_str(meta, "platform", line_no)?.to_string();
            let functions = meta
                .get("functions")
                .and_then(Value::as_array)
                .ok_or_else(|| "line 1: meta.functions must be an array".to_string())?;
            for f in functions {
                summary.functions.push(
                    f.as_str()
                        .ok_or("line 1: non-string function name")?
                        .to_string(),
                );
            }
            summary.per_function = vec![FunctionCounts::default(); summary.functions.len()];
            saw_meta = true;
            continue;
        }
        let t_s = field_f64(&value, "t_s", line_no)?;
        let kind = SpanKind::parse(field_str(&value, "kind", line_no)?)
            .ok_or_else(|| format!("line {line_no}: unknown span kind"))?;
        let req = field_u64(&value, "req", line_no)?;
        let function = field_u64(&value, "fn", line_no)? as usize;
        field_i64(&value, "inst", line_no)?;
        field_i64(&value, "srv", line_no)?;
        let batch = field_u64(&value, "batch", line_no)?;
        let fault = FaultTag::parse(field_str(&value, "fault", line_no)?)
            .ok_or_else(|| format!("line {line_no}: unknown fault tag"))?;
        if let Some(&prev) = last_t.get(&req) {
            if t_s < prev {
                return Err(format!(
                    "line {line_no}: request {req} went backwards in time ({t_s} < {prev})"
                ));
            }
        }
        last_t.insert(req, t_s);
        if function >= summary.per_function.len() {
            summary
                .per_function
                .resize(function + 1, FunctionCounts::default());
        }
        summary.events += 1;
        match kind {
            SpanKind::Arrival => {
                summary.arrivals += 1;
                summary.per_function[function].arrivals += 1;
                arrival_at.insert(req, t_s);
            }
            SpanKind::Enqueued => summary.enqueued += 1,
            SpanKind::BatchFormed => summary.batches_formed += 1,
            SpanKind::ExecStart => {
                summary.exec_starts += 1;
                summary.batch_sizes.add(batch as f64);
            }
            SpanKind::Complete | SpanKind::Dropped | SpanKind::Shed => {
                if let Some(first) = terminated.insert(req, kind) {
                    return Err(format!(
                        "line {line_no}: request {req} terminated twice ({} then {})",
                        first.name(),
                        kind.name()
                    ));
                }
                match kind {
                    SpanKind::Complete => {
                        summary.completed += 1;
                        summary.per_function[function].completed += 1;
                        if let Some(&t0) = arrival_at.get(&req) {
                            summary.latency_ms.add((t_s - t0) * 1e3);
                        }
                    }
                    SpanKind::Dropped => {
                        summary.dropped += 1;
                        summary.per_function[function].dropped += 1;
                    }
                    _ => {
                        summary.shed += 1;
                        summary.per_function[function].shed += 1;
                    }
                }
            }
            SpanKind::Displaced => {
                summary.displaced += 1;
                *summary.displaced_by_fault.entry(fault.name()).or_insert(0) += 1;
            }
            SpanKind::Retried => summary.retried += 1,
            // Instance-scoped: synthetic request ids, never terminal,
            // excluded from the gateway conservation law.
            SpanKind::SwapBegin => summary.swap_begins += 1,
            SpanKind::SwapComplete => summary.swap_completes += 1,
            // Token-level marks: non-terminal (the sequence's complete
            // span still closes the gateway conservation law).
            SpanKind::PrefillStart => summary.prefill_starts += 1,
            SpanKind::FirstToken => summary.first_tokens += 1,
            SpanKind::DecodeComplete => summary.decode_completes += 1,
        }
    }
    // An empty or span-less file is a broken artifact, not a quiet
    // success: every real run writes its metadata record and at least
    // one span, so "nothing to summarize" means the producer failed.
    if !saw_meta {
        return Err("empty trace: missing the {\"meta\":…} record".to_string());
    }
    if summary.events == 0 {
        return Err("trace contains no spans after the metadata record".to_string());
    }
    Ok(summary)
}

/// [`summarize`] over a file on disk.
///
/// # Errors
///
/// Returns the I/O error or the first schema violation, as text.
pub fn summarize_file(path: &Path) -> Result<TraceSummary, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    summarize(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = concat!(
        "{\"meta\":{\"platform\":\"INFless\",\"functions\":[\"resnet\"]}}\n",
        "{\"t_s\":0.5,\"kind\":\"arrival\",\"req\":0,\"fn\":0,\"inst\":-1,\"srv\":-1,\"batch\":0,\"fault\":\"none\"}\n",
        "{\"t_s\":0.5,\"kind\":\"enqueued\",\"req\":0,\"fn\":0,\"inst\":0,\"srv\":2,\"batch\":0,\"fault\":\"none\"}\n",
        "{\"t_s\":0.6,\"kind\":\"batch_formed\",\"req\":0,\"fn\":0,\"inst\":0,\"srv\":2,\"batch\":1,\"fault\":\"none\"}\n",
        "{\"t_s\":0.6,\"kind\":\"exec_start\",\"req\":0,\"fn\":0,\"inst\":0,\"srv\":2,\"batch\":1,\"fault\":\"none\"}\n",
        "{\"t_s\":0.7,\"kind\":\"displaced\",\"req\":0,\"fn\":0,\"inst\":0,\"srv\":2,\"batch\":0,\"fault\":\"server_crash\"}\n",
        "{\"t_s\":0.7,\"kind\":\"shed\",\"req\":0,\"fn\":0,\"inst\":-1,\"srv\":-1,\"batch\":0,\"fault\":\"none\"}\n",
        "{\"t_s\":1.0,\"kind\":\"arrival\",\"req\":1,\"fn\":0,\"inst\":-1,\"srv\":-1,\"batch\":0,\"fault\":\"none\"}\n",
        "{\"t_s\":1.2,\"kind\":\"complete\",\"req\":1,\"fn\":0,\"inst\":1,\"srv\":0,\"batch\":1,\"fault\":\"none\"}\n",
    );

    #[test]
    fn good_trace_summarizes_and_conserves() {
        let s = summarize(GOOD.as_bytes()).unwrap();
        assert_eq!(s.platform, "INFless");
        assert_eq!(s.functions, vec!["resnet".to_string()]);
        assert_eq!(s.events, 8);
        assert_eq!(s.arrivals, 2);
        assert_eq!(s.completed, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.displaced, 1);
        assert_eq!(s.displaced_by_fault.get("server_crash"), Some(&1));
        assert!(s.conserved());
        assert!(s.displacement_balanced());
        // req 1 latency: 1.2 − 1.0 = 200 ms, exact at the extremes.
        let p100 = s.latency_ms.quantile(1.0).unwrap();
        assert!((p100 - 200.0).abs() < 1e-6, "got {p100}");
        // Render the human summary (smoke: no panic, mentions counts).
        let text = s.to_string();
        assert!(text.contains("2 arrivals"));
    }

    /// Swap spans ride synthetic high-bit request ids so they never
    /// collide with real requests in the per-request validation, and
    /// they stay out of the gateway conservation law.
    #[test]
    fn swap_spans_are_counted_and_non_terminal() {
        let synth = (1u64 << 63) | 7;
        let trace = format!(
            concat!(
                "{{\"meta\":{{\"platform\":\"Torpor\",\"functions\":[\"f\"]}}}}\n",
                "{{\"t_s\":0.1,\"kind\":\"swap_begin\",\"req\":{synth},\"fn\":0,\"inst\":7,\"srv\":1,\"batch\":0,\"fault\":\"none\"}}\n",
                "{{\"t_s\":0.2,\"kind\":\"arrival\",\"req\":0,\"fn\":0,\"inst\":-1,\"srv\":-1,\"batch\":0,\"fault\":\"none\"}}\n",
                "{{\"t_s\":0.4,\"kind\":\"swap_complete\",\"req\":{synth},\"fn\":0,\"inst\":7,\"srv\":1,\"batch\":0,\"fault\":\"none\"}}\n",
                "{{\"t_s\":0.5,\"kind\":\"complete\",\"req\":0,\"fn\":0,\"inst\":7,\"srv\":1,\"batch\":1,\"fault\":\"none\"}}\n",
            ),
            synth = synth
        );
        let s = summarize(trace.as_bytes()).unwrap();
        assert_eq!(s.swap_begins, 1);
        assert_eq!(s.swap_completes, 1);
        assert_eq!(s.arrivals, 1);
        assert_eq!(s.completed, 1);
        assert!(s.conserved());
        assert!(s.to_string().contains("1 begun, 1 completed"));
    }

    /// Token-level spans are non-terminal: the sequence's complete span
    /// still closes the gateway conservation law.
    #[test]
    fn llm_spans_are_counted_and_non_terminal() {
        let trace = concat!(
            "{\"meta\":{\"platform\":\"INFless\",\"functions\":[\"chat\"]}}\n",
            "{\"t_s\":0.1,\"kind\":\"arrival\",\"req\":0,\"fn\":0,\"inst\":-1,\"srv\":-1,\"batch\":0,\"fault\":\"none\"}\n",
            "{\"t_s\":0.1,\"kind\":\"enqueued\",\"req\":0,\"fn\":0,\"inst\":0,\"srv\":0,\"batch\":0,\"fault\":\"none\"}\n",
            "{\"t_s\":0.2,\"kind\":\"prefill_start\",\"req\":0,\"fn\":0,\"inst\":0,\"srv\":0,\"batch\":1,\"fault\":\"none\"}\n",
            "{\"t_s\":0.3,\"kind\":\"first_token\",\"req\":0,\"fn\":0,\"inst\":0,\"srv\":0,\"batch\":1,\"fault\":\"none\"}\n",
            "{\"t_s\":0.9,\"kind\":\"decode_complete\",\"req\":0,\"fn\":0,\"inst\":0,\"srv\":0,\"batch\":1,\"fault\":\"none\"}\n",
            "{\"t_s\":0.9,\"kind\":\"complete\",\"req\":0,\"fn\":0,\"inst\":0,\"srv\":0,\"batch\":1,\"fault\":\"none\"}\n",
        );
        let s = summarize(trace.as_bytes()).unwrap();
        assert_eq!(s.prefill_starts, 1);
        assert_eq!(s.first_tokens, 1);
        assert_eq!(s.decode_completes, 1);
        assert_eq!(s.arrivals, 1);
        assert_eq!(s.completed, 1);
        assert!(s.conserved());
        assert!(s.to_string().contains("1 prefills"));
    }

    /// Regression: an empty or span-less trace used to summarize as a
    /// quiet success; it is a broken artifact and must hard-error.
    #[test]
    fn empty_and_spanless_traces_are_rejected() {
        assert!(summarize("".as_bytes())
            .unwrap_err()
            .contains("empty trace"));
        assert!(summarize("\n\n".as_bytes())
            .unwrap_err()
            .contains("empty trace"));
        let meta_only = "{\"meta\":{\"platform\":\"x\",\"functions\":[]}}\n";
        assert!(summarize(meta_only.as_bytes())
            .unwrap_err()
            .contains("no spans"));
    }

    #[test]
    fn malformed_json_is_rejected() {
        let trace = "{\"meta\":{\"platform\":\"x\",\"functions\":[]}}\nnot json\n";
        assert!(summarize(trace.as_bytes()).unwrap_err().contains("line 2"));
    }

    #[test]
    fn missing_meta_is_rejected() {
        let trace =
            "{\"t_s\":0.5,\"kind\":\"arrival\",\"req\":0,\"fn\":0,\"inst\":-1,\"srv\":-1,\"batch\":0,\"fault\":\"none\"}\n";
        assert!(summarize(trace.as_bytes()).unwrap_err().contains("meta"));
    }

    #[test]
    fn missing_key_is_rejected() {
        let trace = concat!(
            "{\"meta\":{\"platform\":\"x\",\"functions\":[]}}\n",
            "{\"t_s\":0.5,\"kind\":\"arrival\",\"req\":0,\"fn\":0,\"inst\":-1,\"srv\":-1,\"batch\":0}\n",
        );
        assert!(summarize(trace.as_bytes()).unwrap_err().contains("fault"));
    }

    #[test]
    fn double_termination_is_rejected() {
        let trace = concat!(
            "{\"meta\":{\"platform\":\"x\",\"functions\":[\"f\"]}}\n",
            "{\"t_s\":0.5,\"kind\":\"arrival\",\"req\":0,\"fn\":0,\"inst\":-1,\"srv\":-1,\"batch\":0,\"fault\":\"none\"}\n",
            "{\"t_s\":0.6,\"kind\":\"complete\",\"req\":0,\"fn\":0,\"inst\":0,\"srv\":0,\"batch\":1,\"fault\":\"none\"}\n",
            "{\"t_s\":0.7,\"kind\":\"dropped\",\"req\":0,\"fn\":0,\"inst\":-1,\"srv\":-1,\"batch\":0,\"fault\":\"none\"}\n",
        );
        assert!(summarize(trace.as_bytes())
            .unwrap_err()
            .contains("terminated twice"));
    }

    #[test]
    fn time_reversal_within_a_request_is_rejected() {
        let trace = concat!(
            "{\"meta\":{\"platform\":\"x\",\"functions\":[\"f\"]}}\n",
            "{\"t_s\":1.0,\"kind\":\"arrival\",\"req\":0,\"fn\":0,\"inst\":-1,\"srv\":-1,\"batch\":0,\"fault\":\"none\"}\n",
            "{\"t_s\":0.9,\"kind\":\"enqueued\",\"req\":0,\"fn\":0,\"inst\":0,\"srv\":0,\"batch\":0,\"fault\":\"none\"}\n",
        );
        assert!(summarize(trace.as_bytes())
            .unwrap_err()
            .contains("backwards"));
    }
}
