//! Tick-sampled time-series gauges and their run-level summary.

use serde::{Deserialize, Serialize};

/// One sampled gauge row (one scaler tick).
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeRow {
    /// Simulated timestamp, seconds.
    pub t_s: f64,
    /// Live instances across all functions (including starting ones).
    pub instances: u64,
    /// Instances still cold/pre-warm starting.
    pub starting: u64,
    /// Fraction of cluster CPU cores allocated, `[0, 1]`.
    pub cpu_occupancy: f64,
    /// Fraction of cluster GPU SM share allocated, `[0, 1]`.
    pub gpu_occupancy: f64,
    /// Requests waiting in batch queues across all instances.
    pub queue_depth: u64,
    /// Batches currently executing.
    pub in_flight_batches: u64,
    /// KV-cache arena tokens currently reserved across live
    /// autoregressive episodes, in bytes (0 for non-LLM runs).
    pub kv_resident_bytes: u64,
    /// Host-cache (swap-tier) occupancy: model weights resident in
    /// host RAM, MB (0 when no residency tier is active).
    pub host_cache_mb_used: f64,
    /// Live instance count per function index.
    pub per_function_instances: Vec<u64>,
}

/// Constant-size digest of the gauge stream, folded into the run
/// report. Always maintained (a few max/mean updates per tick), so a
/// run does not need a sink attached to report it.
///
/// Serialized behind `#[serde(default)]` so reports written before the
/// telemetry subsystem existed still deserialize.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct TimeseriesSummary {
    /// Gauge samples taken (scaler ticks observed).
    pub samples: u64,
    /// Peak live instance count.
    pub peak_instances: u64,
    /// Mean live instance count over the sampled ticks.
    pub mean_instances: f64,
    /// Peak CPU occupancy, `[0, 1]`.
    pub peak_cpu_occupancy: f64,
    /// Peak GPU occupancy, `[0, 1]`.
    pub peak_gpu_occupancy: f64,
    /// Deepest total batch-queue backlog observed.
    pub max_queue_depth: u64,
    /// Most batches observed executing at once.
    pub peak_in_flight_batches: u64,
}

impl TimeseriesSummary {
    /// Folds one tick's gauges into the summary.
    pub fn observe(
        &mut self,
        instances: u64,
        cpu_occupancy: f64,
        gpu_occupancy: f64,
        queue_depth: u64,
        in_flight_batches: u64,
    ) {
        self.samples += 1;
        self.peak_instances = self.peak_instances.max(instances);
        self.mean_instances += (instances as f64 - self.mean_instances) / self.samples as f64;
        self.peak_cpu_occupancy = self.peak_cpu_occupancy.max(cpu_occupancy);
        self.peak_gpu_occupancy = self.peak_gpu_occupancy.max(gpu_occupancy);
        self.max_queue_depth = self.max_queue_depth.max(queue_depth);
        self.peak_in_flight_batches = self.peak_in_flight_batches.max(in_flight_batches);
    }

    /// `true` once at least one tick has been observed.
    pub fn any(&self) -> bool {
        self.samples > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_tracks_peaks_and_mean() {
        let mut s = TimeseriesSummary::default();
        s.observe(2, 0.1, 0.5, 3, 1);
        s.observe(6, 0.4, 0.2, 1, 4);
        s.observe(4, 0.2, 0.3, 9, 2);
        assert!(s.any());
        assert_eq!(s.samples, 3);
        assert_eq!(s.peak_instances, 6);
        assert!((s.mean_instances - 4.0).abs() < 1e-12);
        assert!((s.peak_cpu_occupancy - 0.4).abs() < 1e-12);
        assert!((s.peak_gpu_occupancy - 0.5).abs() < 1e-12);
        assert_eq!(s.max_queue_depth, 9);
        assert_eq!(s.peak_in_flight_batches, 4);
    }

    #[test]
    fn default_is_empty() {
        let s = TimeseriesSummary::default();
        assert!(!s.any());
        assert_eq!(s.mean_instances, 0.0);
    }
}
