//! Turning rate curves into individual arrival timestamps.

use infless_sim::{rng::stream, SimDuration, SimTime};
use rand::Rng;
use rand_distr::{Distribution, Poisson};

use crate::series::RateSeries;

/// Samples arrival timestamps from a non-homogeneous Poisson process
/// whose intensity follows `series`: within each bin, the count is
/// Poisson(rate · bin) and the timestamps are uniform. The result is
/// sorted. Deterministic in `seed`.
///
/// # Example
///
/// ```
/// use infless_sim::SimDuration;
/// use infless_workload::{poisson_arrivals, RateSeries};
///
/// let series = RateSeries::constant(100.0, SimDuration::from_secs(60));
/// let arrivals = poisson_arrivals(&series, 7);
/// // ~6000 expected arrivals.
/// assert!((arrivals.len() as f64 - 6000.0).abs() < 400.0);
/// assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
/// ```
pub fn poisson_arrivals(series: &RateSeries, seed: u64) -> Vec<SimTime> {
    let mut rng = stream(seed, "arrivals/poisson");
    let bin_secs = series.bin().as_secs_f64();
    let mut out = Vec::with_capacity(series.expected_requests() as usize + 16);
    for (i, &rate) in series.rates().iter().enumerate() {
        let lambda = rate * bin_secs;
        if lambda <= 0.0 {
            continue;
        }
        let count = Poisson::new(lambda)
            .expect("lambda validated positive")
            .sample(&mut rng) as usize;
        let bin_start = SimTime::ZERO + series.bin() * i as u64;
        // Clamp inside the bin: the microsecond rounding in
        // `from_secs_f64` could otherwise push a draw taken just under
        // the bin boundary into the next bin (or past the series end).
        let bin_cap = series.bin() - SimDuration::from_micros(1);
        let mut times: Vec<SimTime> = (0..count)
            .map(|_| {
                bin_start + SimDuration::from_secs_f64(rng.gen_range(0.0..bin_secs)).min(bin_cap)
            })
            .collect();
        times.sort_unstable();
        out.extend(times);
    }
    out
}

/// Evenly-spaced deterministic arrivals at `rps` for `duration` — the
/// constant stress load used by the throughput experiments (Fig. 11).
///
/// # Panics
///
/// Panics if `rps` is not strictly positive.
///
/// # Example
///
/// ```
/// use infless_sim::SimDuration;
/// use infless_workload::constant_arrivals;
///
/// let a = constant_arrivals(10.0, SimDuration::from_secs(1));
/// assert_eq!(a.len(), 10);
/// ```
pub fn constant_arrivals(rps: f64, duration: SimDuration) -> Vec<SimTime> {
    assert!(rps > 0.0 && rps.is_finite(), "RPS must be positive");
    let gap = 1.0 / rps;
    let n = (duration.as_secs_f64() * rps).floor() as u64;
    (0..n)
        .map(|i| SimTime::ZERO + SimDuration::from_secs_f64(i as f64 * gap))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn poisson_count_close_to_expectation() {
        let series = RateSeries::constant(200.0, SimDuration::from_mins(5));
        let arrivals = poisson_arrivals(&series, 1);
        let expected = series.expected_requests();
        let rel = (arrivals.len() as f64 - expected).abs() / expected;
        assert!(rel < 0.05, "count off by {:.1}%", rel * 100.0);
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let series = RateSeries::constant(50.0, SimDuration::from_secs(30));
        assert_eq!(poisson_arrivals(&series, 3), poisson_arrivals(&series, 3));
        assert_ne!(poisson_arrivals(&series, 3), poisson_arrivals(&series, 4));
    }

    #[test]
    fn silent_bins_produce_no_arrivals() {
        let series = RateSeries::new(SimDuration::from_secs(10), vec![0.0, 100.0, 0.0]);
        let arrivals = poisson_arrivals(&series, 5);
        assert!(!arrivals.is_empty());
        for t in &arrivals {
            assert!(
                *t >= SimTime::from_secs(10) && *t < SimTime::from_secs(20),
                "arrival outside the active bin: {t}"
            );
        }
    }

    #[test]
    fn constant_arrivals_are_evenly_spaced() {
        let a = constant_arrivals(100.0, SimDuration::from_secs(2));
        assert_eq!(a.len(), 200);
        let gap = a[1] - a[0];
        assert_eq!(gap, SimDuration::from_millis(10));
        assert!(a.windows(2).all(|w| w[1] - w[0] == gap));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rps_rejected() {
        constant_arrivals(0.0, SimDuration::from_secs(1));
    }

    proptest! {
        /// Arrivals are sorted and inside the series' time range.
        #[test]
        fn prop_arrivals_sorted_in_range(
            rates in prop::collection::vec(0.0f64..300.0, 1..20),
            seed in 0u64..1000,
        ) {
            let series = RateSeries::new(SimDuration::from_secs(5), rates);
            let arrivals = poisson_arrivals(&series, seed);
            for w in arrivals.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            let end = SimTime::ZERO + series.duration();
            for t in &arrivals {
                prop_assert!(*t < end);
            }
        }
    }
}
