//! Workload generation: arrival processes and production-trace shapes.
//!
//! The paper drives its evaluation with the Azure Functions production
//! trace (Shahrad et al.), classified into three arrival patterns —
//! *sporadic*, *periodic* and *bursty* (Fig. 10) — plus a 3-day
//! fraud-detection trace exhibiting long-term periodicity (LTP) with
//! short-term bursts (STB, Fig. 9a). We do not have the proprietary
//! traces themselves, so this crate generates the same pattern classes
//! synthetically, seeded and reproducible:
//!
//! * [`RateSeries`] — a piecewise-constant request-rate curve (RPS per
//!   time bin), the shape of a trace.
//! * [`TracePattern`] — generators for the four pattern classes.
//! * [`poisson_arrivals`] — turns a rate curve into individual arrival
//!   timestamps via a per-bin Poisson process.
//! * [`Workload`] — merged, sorted arrival streams for many functions.
//!
//! # Example
//!
//! ```
//! use infless_sim::SimDuration;
//! use infless_workload::{poisson_arrivals, RateSeries, TracePattern};
//!
//! let series = TracePattern::Periodic.generate(
//!     50.0,                            // mean RPS
//!     SimDuration::from_mins(10),      // duration
//!     42,                              // seed
//! );
//! let arrivals = poisson_arrivals(&series, 42);
//! // ~50 rps over 10 minutes ≈ 30k arrivals.
//! assert!(arrivals.len() > 20_000 && arrivals.len() < 40_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrivals;
mod series;
pub mod trace_io;
mod traces;
mod workload;

pub use arrivals::{constant_arrivals, poisson_arrivals};
pub use series::RateSeries;
pub use trace_io::{read_csv, series_to_row, write_csv, TraceRow};
pub use traces::TracePattern;
pub use workload::{FunctionLoad, Workload};
