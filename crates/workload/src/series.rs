//! Piecewise-constant request-rate curves.

use infless_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A request-rate curve: RPS held constant within fixed-width bins.
///
/// # Example
///
/// ```
/// use infless_sim::{SimDuration, SimTime};
/// use infless_workload::RateSeries;
///
/// let s = RateSeries::new(SimDuration::from_secs(60), vec![10.0, 20.0, 0.0]);
/// assert_eq!(s.rate_at(SimTime::from_secs(90)), 20.0);
/// assert_eq!(s.duration(), SimDuration::from_mins(3));
/// assert_eq!(s.peak(), 20.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSeries {
    bin: SimDuration,
    rates: Vec<f64>,
}

impl RateSeries {
    /// Creates a series with the given bin width and per-bin rates.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero, `rates` is empty, or any rate is
    /// negative or non-finite.
    pub fn new(bin: SimDuration, rates: Vec<f64>) -> Self {
        assert!(!bin.is_zero(), "bin width must be positive");
        assert!(!rates.is_empty(), "a rate series needs at least one bin");
        assert!(
            rates.iter().all(|r| r.is_finite() && *r >= 0.0),
            "rates must be non-negative and finite"
        );
        RateSeries { bin, rates }
    }

    /// A constant rate over `duration`, in one-minute bins (or a single
    /// bin if the duration is shorter).
    pub fn constant(rps: f64, duration: SimDuration) -> Self {
        let bin = SimDuration::from_mins(1).min(duration);
        let bins = (duration.as_secs_f64() / bin.as_secs_f64()).ceil().max(1.0) as usize;
        RateSeries::new(bin, vec![rps; bins])
    }

    /// Bin width.
    pub fn bin(&self) -> SimDuration {
        self.bin
    }

    /// Per-bin rates, RPS.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Total covered duration.
    pub fn duration(&self) -> SimDuration {
        self.bin * self.rates.len() as u64
    }

    /// The rate in effect at `t`; zero past the end of the series.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let idx = (t.as_micros() / self.bin.as_micros()) as usize;
        self.rates.get(idx).copied().unwrap_or(0.0)
    }

    /// The peak rate.
    pub fn peak(&self) -> f64 {
        self.rates.iter().copied().fold(0.0, f64::max)
    }

    /// The time-average rate.
    pub fn mean(&self) -> f64 {
        self.rates.iter().sum::<f64>() / self.rates.len() as f64
    }

    /// Expected total number of requests.
    pub fn expected_requests(&self) -> f64 {
        self.rates.iter().sum::<f64>() * self.bin.as_secs_f64()
    }

    /// Scales every rate by `factor` (for load sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn scaled(&self, factor: f64) -> RateSeries {
        assert!(factor.is_finite() && factor >= 0.0, "bad scale factor");
        RateSeries {
            bin: self.bin,
            rates: self.rates.iter().map(|r| r * factor).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_series_covers_duration() {
        let s = RateSeries::constant(25.0, SimDuration::from_mins(5));
        assert_eq!(s.rates().len(), 5);
        assert_eq!(s.mean(), 25.0);
        assert_eq!(s.peak(), 25.0);
        assert!((s.expected_requests() - 25.0 * 300.0).abs() < 1e-9);
    }

    #[test]
    fn short_duration_gets_single_bin() {
        let s = RateSeries::constant(10.0, SimDuration::from_secs(10));
        assert_eq!(s.rates().len(), 1);
        assert_eq!(s.bin(), SimDuration::from_secs(10));
    }

    #[test]
    fn rate_lookup_past_end_is_zero() {
        let s = RateSeries::new(SimDuration::from_secs(1), vec![5.0]);
        assert_eq!(s.rate_at(SimTime::from_secs(10)), 0.0);
    }

    #[test]
    fn scaling_multiplies_everything() {
        let s = RateSeries::new(SimDuration::from_secs(1), vec![1.0, 3.0]).scaled(2.0);
        assert_eq!(s.rates(), &[2.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rates_rejected() {
        RateSeries::new(SimDuration::from_secs(1), vec![-1.0]);
    }

    proptest! {
        /// mean <= peak and expected_requests consistent with mean.
        #[test]
        fn prop_series_aggregates(rates in prop::collection::vec(0.0f64..1e4, 1..100)) {
            let s = RateSeries::new(SimDuration::from_secs(30), rates);
            prop_assert!(s.mean() <= s.peak() + 1e-9);
            let expect = s.mean() * s.duration().as_secs_f64();
            prop_assert!((s.expected_requests() - expect).abs() < 1e-6 * (1.0 + expect));
        }
    }
}
