//! Reading and writing Azure-Functions-style invocation traces.
//!
//! The paper's dynamic workloads come from the Azure Functions
//! production trace (Shahrad et al.): per-function rows of per-minute
//! invocation counts. The proprietary trace itself is not
//! redistributable, but this module speaks its shape — a CSV with a
//! function identifier followed by one count column per minute — so
//! real trace files can be replayed directly, and our generators can
//! export workloads in the same format.
//!
//! [`TraceRow::classify`] reproduces the paper's three-way pattern
//! classification (*sporadic* / *periodic* / *bursty*, Fig. 10) with a
//! simple heuristic over the rate curve.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use infless_sim::SimDuration;

use crate::series::RateSeries;
use crate::traces::TracePattern;
use crate::workload::FunctionLoad;

/// One function's row of an invocation trace: a name plus per-minute
/// invocation counts.
///
/// # Example
///
/// ```
/// use infless_workload::trace_io::TraceRow;
///
/// let row = TraceRow::new("fraud-detector", vec![0, 12, 40, 12, 0, 0]);
/// assert_eq!(row.total_invocations(), 64);
/// let load = row.to_load();
/// assert!(load.series().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRow {
    name: String,
    per_minute: Vec<u64>,
}

impl TraceRow {
    /// Creates a row.
    ///
    /// # Panics
    ///
    /// Panics if `per_minute` is empty.
    pub fn new(name: impl Into<String>, per_minute: Vec<u64>) -> Self {
        assert!(
            !per_minute.is_empty(),
            "a trace row needs at least one minute"
        );
        TraceRow {
            name: name.into(),
            per_minute,
        }
    }

    /// The function identifier.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-minute invocation counts.
    pub fn per_minute(&self) -> &[u64] {
        &self.per_minute
    }

    /// Total invocations over the trace.
    pub fn total_invocations(&self) -> u64 {
        self.per_minute.iter().sum()
    }

    /// The row as a rate curve (RPS per one-minute bin).
    pub fn to_series(&self) -> RateSeries {
        RateSeries::new(
            SimDuration::from_mins(1),
            self.per_minute.iter().map(|c| *c as f64 / 60.0).collect(),
        )
    }

    /// The row as a Poisson [`FunctionLoad`] for replay.
    pub fn to_load(&self) -> FunctionLoad {
        FunctionLoad::poisson(self.to_series())
    }

    /// Classifies the row into the paper's Fig. 10 pattern classes.
    ///
    /// * mostly-silent rows (> 60 % zero minutes) are **sporadic**;
    /// * rows whose peak exceeds 3× their active-mean are **bursty**;
    /// * everything else is **periodic** (steady/diurnal).
    pub fn classify(&self) -> TracePattern {
        let n = self.per_minute.len() as f64;
        let zeros = self.per_minute.iter().filter(|c| **c == 0).count() as f64;
        if zeros / n > 0.6 {
            return TracePattern::Sporadic;
        }
        let active: Vec<f64> = self
            .per_minute
            .iter()
            .filter(|c| **c > 0)
            .map(|c| *c as f64)
            .collect();
        if active.is_empty() {
            return TracePattern::Sporadic;
        }
        let mean = active.iter().sum::<f64>() / active.len() as f64;
        let peak = active.iter().cloned().fold(0.0f64, f64::max);
        if peak > 3.0 * mean {
            TracePattern::Bursty
        } else {
            TracePattern::Periodic
        }
    }
}

/// Errors from trace parsing.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number and description).
    Parse {
        /// The offending line, 1-based.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O failed: {e}"),
            TraceIoError::Parse { line, message } => {
                write!(f, "trace line {line} is malformed: {message}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Reads an Azure-style invocation CSV: a header line
/// (`function,1,2,3,…`) followed by one row per function.
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failure, a missing header, rows with
/// no counts, non-numeric counts, or ragged rows.
///
/// # Example
///
/// ```
/// use infless_workload::trace_io::{read_csv, write_csv, TraceRow};
///
/// let rows = vec![TraceRow::new("f0", vec![1, 0, 3])];
/// let mut buf = Vec::new();
/// write_csv(&rows, &mut buf)?;
/// assert_eq!(read_csv(buf.as_slice())?, rows);
/// # Ok::<(), infless_workload::trace_io::TraceIoError>(())
/// ```
pub fn read_csv<R: Read>(reader: R) -> Result<Vec<TraceRow>, TraceIoError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines();
    let header = lines.next().ok_or(TraceIoError::Parse {
        line: 1,
        message: "empty file (expected a header)".into(),
    })??;
    let width = header.split(',').count().saturating_sub(1);
    if width == 0 {
        return Err(TraceIoError::Parse {
            line: 1,
            message: "header has no minute columns".into(),
        });
    }
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        let lineno = i + 2;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let name = parts
            .next()
            .ok_or(TraceIoError::Parse {
                line: lineno,
                message: "missing function name".into(),
            })?
            .trim()
            .to_string();
        let counts: Result<Vec<u64>, TraceIoError> = parts
            .map(|p| {
                p.trim().parse::<u64>().map_err(|e| TraceIoError::Parse {
                    line: lineno,
                    message: format!("bad count {p:?}: {e}"),
                })
            })
            .collect();
        let counts = counts?;
        if counts.len() != width {
            return Err(TraceIoError::Parse {
                line: lineno,
                message: format!("expected {width} counts, found {}", counts.len()),
            });
        }
        rows.push(TraceRow::new(name, counts));
    }
    Ok(rows)
}

/// Writes rows in the same CSV shape [`read_csv`] accepts.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on write failure.
///
/// # Panics
///
/// Panics if `rows` is empty or rows have differing lengths — a ragged
/// trace cannot be represented in this format.
pub fn write_csv<W: Write>(rows: &[TraceRow], mut writer: W) -> Result<(), TraceIoError> {
    assert!(!rows.is_empty(), "cannot write an empty trace");
    let width = rows[0].per_minute.len();
    assert!(
        rows.iter().all(|r| r.per_minute.len() == width),
        "trace rows must cover the same minutes"
    );
    write!(writer, "function")?;
    for m in 1..=width {
        write!(writer, ",{m}")?;
    }
    writeln!(writer)?;
    for row in rows {
        write!(writer, "{}", row.name)?;
        for c in &row.per_minute {
            write!(writer, ",{c}")?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Exports a generated [`RateSeries`] as a trace row (expected counts
/// per minute, rounded), for writing synthetic workloads in the Azure
/// format.
pub fn series_to_row(name: impl Into<String>, series: &RateSeries) -> TraceRow {
    let bin_secs = series.bin().as_secs_f64();
    TraceRow::new(
        name,
        series
            .rates()
            .iter()
            .map(|r| (r * bin_secs).round() as u64)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_preserves_rows() {
        let rows = vec![
            TraceRow::new("alpha", vec![0, 5, 9, 0]),
            TraceRow::new("beta", vec![1, 1, 1, 1]),
        ];
        let mut buf = Vec::new();
        write_csv(&rows, &mut buf).unwrap();
        assert_eq!(read_csv(buf.as_slice()).unwrap(), rows);
    }

    #[test]
    fn rejects_ragged_rows() {
        let csv = "function,1,2\na,1,2\nb,1\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { line: 3, .. }), "{err}");
    }

    #[test]
    fn rejects_bad_counts() {
        let csv = "function,1,2\na,1,x\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad count"));
    }

    #[test]
    fn rejects_empty_file() {
        let err = read_csv("".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("header") || err.to_string().contains("empty"));
    }

    #[test]
    fn skips_blank_lines() {
        let csv = "function,1,2\n\na,1,2\n\n";
        let rows = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn classification_matches_pattern_classes() {
        // Mostly silent → sporadic.
        let mut counts = vec![0u64; 100];
        counts[10] = 30;
        counts[60] = 25;
        assert_eq!(
            TraceRow::new("s", counts).classify(),
            TracePattern::Sporadic
        );
        // Steady → periodic.
        assert_eq!(
            TraceRow::new("p", vec![50; 100]).classify(),
            TracePattern::Periodic
        );
        // Steady base with tall spikes → bursty.
        let mut counts = vec![10u64; 100];
        counts[40] = 90;
        counts[41] = 80;
        assert_eq!(TraceRow::new("b", counts).classify(), TracePattern::Bursty);
    }

    #[test]
    fn generated_traces_classify_as_their_own_pattern() {
        for pattern in TracePattern::evaluation_set() {
            let series = pattern.generate(30.0, SimDuration::from_hours(6), 9);
            let row = series_to_row("g", &series);
            assert_eq!(
                row.classify(),
                pattern,
                "generator for {pattern} should classify as itself"
            );
        }
    }

    #[test]
    fn series_round_trip_preserves_mean_rate() {
        let series = TracePattern::Periodic.generate(40.0, SimDuration::from_hours(2), 3);
        let row = series_to_row("f", &series);
        let back = row.to_series();
        assert!((back.mean() - series.mean()).abs() / series.mean() < 0.05);
    }

    proptest! {
        /// Any count matrix round-trips bit-exactly.
        #[test]
        fn prop_csv_round_trip(
            rows in prop::collection::vec(prop::collection::vec(0u64..10_000, 5), 1..20)
        ) {
            let rows: Vec<TraceRow> = rows
                .into_iter()
                .enumerate()
                .map(|(i, counts)| TraceRow::new(format!("fn{i}"), counts))
                .collect();
            let mut buf = Vec::new();
            write_csv(&rows, &mut buf).unwrap();
            prop_assert_eq!(read_csv(buf.as_slice()).unwrap(), rows);
        }
    }
}
