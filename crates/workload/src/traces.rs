//! Generators for the production-trace pattern classes.

use infless_sim::{rng::stream, SimDuration};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::series::RateSeries;

/// The arrival-pattern classes of the paper's Fig. 10, plus the Fig. 9a
/// diurnal shape used by the cold-start evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TracePattern {
    /// Occasional short activity windows separated by long silences —
    /// the cold-start stress case.
    Sporadic,
    /// Smooth periodic load (diurnal user-access pattern compressed to
    /// the requested duration).
    Periodic,
    /// A steady base load punctuated by sudden multiplicative spikes
    /// and dips.
    Bursty,
    /// Long-term periodicity *with* short-term bursts (LTP + STB,
    /// Fig. 9a): a diurnal cycle overlaid with random spikes. This is
    /// the shape LSTH is designed for.
    Diurnal,
}

impl TracePattern {
    /// All pattern classes, in the order the paper's figures list them.
    pub fn all() -> [TracePattern; 4] {
        [
            TracePattern::Sporadic,
            TracePattern::Periodic,
            TracePattern::Bursty,
            TracePattern::Diurnal,
        ]
    }

    /// The three classes compared in Figs. 12a/15a/16.
    pub fn evaluation_set() -> [TracePattern; 3] {
        [
            TracePattern::Sporadic,
            TracePattern::Periodic,
            TracePattern::Bursty,
        ]
    }

    /// The pattern's display name.
    pub fn name(self) -> &'static str {
        match self {
            TracePattern::Sporadic => "sporadic",
            TracePattern::Periodic => "periodic",
            TracePattern::Bursty => "bursty",
            TracePattern::Diurnal => "diurnal",
        }
    }

    /// Generates a rate curve with the given time-average RPS over
    /// `duration`, in one-minute bins. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `mean_rps` is negative/non-finite or `duration` is zero.
    pub fn generate(self, mean_rps: f64, duration: SimDuration, seed: u64) -> RateSeries {
        assert!(
            mean_rps.is_finite() && mean_rps >= 0.0,
            "mean RPS must be non-negative"
        );
        assert!(!duration.is_zero(), "duration must be positive");
        let bin = SimDuration::from_mins(1).min(duration);
        let bins = (duration.as_secs_f64() / bin.as_secs_f64()).ceil().max(1.0) as usize;
        let mut rng = stream(seed, &format!("trace/{}", self.name()));

        let raw: Vec<f64> = match self {
            TracePattern::Sporadic => {
                // Active windows cover ~15% of bins; bursts last 1-4 bins.
                let mut rates = vec![0.0; bins];
                let mut i = 0;
                while i < bins {
                    if rng.gen_bool(0.07) {
                        let len = rng.gen_range(1..=4).min(bins - i);
                        let level = rng.gen_range(0.5..2.0);
                        for r in rates.iter_mut().skip(i).take(len) {
                            *r = level;
                        }
                        i += len;
                    } else {
                        i += 1;
                    }
                }
                rates
            }
            TracePattern::Periodic => {
                // Two full cycles over the duration, never dropping to zero.
                (0..bins)
                    .map(|i| {
                        let phase = i as f64 / bins as f64 * 2.0 * std::f64::consts::TAU;
                        1.0 + 0.8 * phase.sin()
                    })
                    .collect()
            }
            TracePattern::Bursty => {
                let mut rates = vec![0.35; bins];
                let mut i = 0;
                while i < bins {
                    if rng.gen_bool(0.05) {
                        let len = rng.gen_range(1..=3).min(bins - i);
                        let spike = rng.gen_range(3.0..8.0);
                        for r in rates.iter_mut().skip(i).take(len) {
                            *r = spike;
                        }
                        i += len;
                    } else {
                        i += 1;
                    }
                }
                rates
            }
            TracePattern::Diurnal => {
                // One cycle per day of simulated time (or one cycle total
                // for sub-day durations), plus STB spikes/dips.
                let day_bins =
                    (SimDuration::from_hours(24).as_secs_f64() / bin.as_secs_f64()) as usize;
                let period = day_bins.min(bins).max(1) as f64;
                (0..bins)
                    .map(|i| {
                        let phase = i as f64 / period * std::f64::consts::TAU;
                        let base = 1.0 + 0.7 * phase.sin();
                        let stb = if rng.gen_bool(0.08) {
                            rng.gen_range(0.3..2.5)
                        } else {
                            1.0
                        };
                        base * stb
                    })
                    .collect()
            }
        };

        // Normalize so the time-average equals mean_rps.
        let raw_mean = raw.iter().sum::<f64>() / raw.len() as f64;
        let rates = if raw_mean > 0.0 && mean_rps > 0.0 {
            raw.iter().map(|r| r / raw_mean * mean_rps).collect()
        } else {
            vec![0.0; bins]
        };
        RateSeries::new(bin, rates)
    }
}

impl std::fmt::Display for TracePattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: SimDuration = SimDuration::from_hours(1);

    #[test]
    fn all_patterns_hit_target_mean() {
        for p in TracePattern::all() {
            let s = p.generate(40.0, HOUR, 1);
            assert!(
                (s.mean() - 40.0).abs() < 1e-6,
                "{p}: mean {} != 40",
                s.mean()
            );
            assert_eq!(s.rates().len(), 60);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for p in TracePattern::all() {
            assert_eq!(p.generate(10.0, HOUR, 5), p.generate(10.0, HOUR, 5));
        }
        assert_ne!(
            TracePattern::Bursty.generate(10.0, HOUR, 5),
            TracePattern::Bursty.generate(10.0, HOUR, 6)
        );
    }

    #[test]
    fn sporadic_is_mostly_silent() {
        let s = TracePattern::Sporadic.generate(10.0, SimDuration::from_hours(12), 3);
        let zero_bins = s.rates().iter().filter(|r| **r == 0.0).count();
        let frac = zero_bins as f64 / s.rates().len() as f64;
        assert!(frac > 0.5, "sporadic should be mostly idle, got {frac}");
    }

    #[test]
    fn periodic_never_goes_silent() {
        let s = TracePattern::Periodic.generate(10.0, HOUR, 3);
        assert!(s.rates().iter().all(|r| *r > 0.0));
        // Meaningful swing between trough and peak.
        let min = s.rates().iter().cloned().fold(f64::MAX, f64::min);
        assert!(s.peak() / min > 3.0);
    }

    #[test]
    fn bursty_has_spikes_above_base() {
        let s = TracePattern::Bursty.generate(10.0, SimDuration::from_hours(6), 3);
        let mean = s.mean();
        assert!(s.peak() > 3.0 * mean, "peak {} vs mean {mean}", s.peak());
    }

    #[test]
    fn diurnal_cycles_daily() {
        let s = TracePattern::Diurnal.generate(100.0, SimDuration::from_hours(48), 3);
        // Correlate bin i with bin i+24h: same phase, strong similarity
        // despite STB noise.
        let day = 24 * 60;
        let rates = s.rates();
        let mut same_phase = 0.0;
        let mut anti_phase = 0.0;
        for i in 0..day {
            same_phase += (rates[i] - rates[i + day]).abs();
            anti_phase += (rates[i] - rates[(i + day / 2) % (2 * day)]).abs();
        }
        assert!(
            same_phase < anti_phase,
            "daily periodicity missing: same {same_phase} anti {anti_phase}"
        );
    }

    #[test]
    fn zero_mean_is_all_zero() {
        let s = TracePattern::Bursty.generate(0.0, HOUR, 1);
        assert!(s.rates().iter().all(|r| *r == 0.0));
    }

    #[test]
    fn evaluation_set_is_the_fig10_trio() {
        let names: Vec<_> = TracePattern::evaluation_set()
            .iter()
            .map(|p| p.name())
            .collect();
        assert_eq!(names, ["sporadic", "periodic", "bursty"]);
    }
}
