//! Multi-function workloads: merged arrival streams.

use infless_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::arrivals::{constant_arrivals, poisson_arrivals};
use crate::series::RateSeries;
use crate::traces::TracePattern;

/// The load offered to one function: its rate curve plus how arrivals
/// are drawn from it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionLoad {
    kind: LoadKind,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum LoadKind {
    /// Poisson arrivals following a rate curve.
    Poisson(RateSeries),
    /// Evenly-spaced arrivals at the curve's mean rate.
    Constant(RateSeries),
    /// An explicit, pre-sorted arrival list (single-shot timers,
    /// replayed production traces).
    Explicit(Vec<SimTime>),
}

impl FunctionLoad {
    /// Poisson arrivals following `series`.
    pub fn poisson(series: RateSeries) -> Self {
        FunctionLoad {
            kind: LoadKind::Poisson(series),
        }
    }

    /// Evenly-spaced arrivals at constant `rps` (stress-test load).
    pub fn constant(rps: f64, duration: SimDuration) -> Self {
        FunctionLoad {
            kind: LoadKind::Constant(RateSeries::constant(rps, duration)),
        }
    }

    /// A Poisson load following a synthetic trace pattern.
    pub fn trace(pattern: TracePattern, mean_rps: f64, duration: SimDuration, seed: u64) -> Self {
        FunctionLoad::poisson(pattern.generate(mean_rps, duration, seed))
    }

    /// Exact arrival timestamps — single-shot timer functions and trace
    /// replays. The list is sorted internally.
    pub fn explicit(mut times: Vec<SimTime>) -> Self {
        times.sort_unstable();
        FunctionLoad {
            kind: LoadKind::Explicit(times),
        }
    }

    /// The underlying rate curve, if the load is curve-driven.
    pub fn series(&self) -> Option<&RateSeries> {
        match &self.kind {
            LoadKind::Poisson(s) | LoadKind::Constant(s) => Some(s),
            LoadKind::Explicit(_) => None,
        }
    }

    fn sample(&self, seed: u64) -> Vec<SimTime> {
        match &self.kind {
            LoadKind::Constant(series) => {
                if series.mean() <= 0.0 {
                    Vec::new()
                } else {
                    constant_arrivals(series.mean(), series.duration())
                }
            }
            LoadKind::Poisson(series) => poisson_arrivals(series, seed),
            LoadKind::Explicit(times) => times.clone(),
        }
    }
}

/// A complete workload: per-function arrival streams merged into one
/// time-sorted sequence of `(time, function index)` pairs — exactly
/// what a platform's gateway consumes.
///
/// # Example
///
/// ```
/// use infless_sim::SimDuration;
/// use infless_workload::{FunctionLoad, Workload};
///
/// let w = Workload::build(
///     &[
///         FunctionLoad::constant(10.0, SimDuration::from_secs(2)),
///         FunctionLoad::constant(5.0, SimDuration::from_secs(2)),
///     ],
///     99,
/// );
/// assert_eq!(w.len(), 30);
/// assert!(w.arrivals().windows(2).all(|p| p[0].0 <= p[1].0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    arrivals: Vec<(SimTime, usize)>,
    functions: usize,
}

impl Workload {
    /// Samples every function's arrivals (independent streams derived
    /// from `seed`) and merges them in time order.
    pub fn build(loads: &[FunctionLoad], seed: u64) -> Self {
        let mut arrivals: Vec<(SimTime, usize)> = Vec::new();
        for (i, load) in loads.iter().enumerate() {
            let sub_seed = infless_sim::rng::derive_seed(seed, &format!("workload/fn{i}"));
            arrivals.extend(load.sample(sub_seed).into_iter().map(|t| (t, i)));
        }
        arrivals.sort_unstable();
        Workload {
            arrivals,
            functions: loads.len(),
        }
    }

    /// The merged `(time, function index)` stream, sorted by time.
    pub fn arrivals(&self) -> &[(SimTime, usize)] {
        &self.arrivals
    }

    /// Total number of requests.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// `true` if the workload contains no requests.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Number of functions the workload addresses.
    pub fn functions(&self) -> usize {
        self.functions
    }

    /// The time of the last arrival, or zero for an empty workload.
    pub fn end_time(&self) -> SimTime {
        self.arrivals
            .last()
            .map(|(t, _)| *t)
            .unwrap_or(SimTime::ZERO)
    }

    /// Observed average RPS for one function over a window — what the
    /// auto-scaling engine's monitor would report.
    pub fn observed_rps(&self, function: usize, from: SimTime, to: SimTime) -> f64 {
        assert!(to > from, "empty observation window");
        let n = self
            .arrivals
            .iter()
            .filter(|(t, f)| *f == function && *t >= from && *t < to)
            .count();
        n as f64 / (to - from).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_preserves_all_arrivals() {
        let loads = [
            FunctionLoad::constant(20.0, SimDuration::from_secs(5)),
            FunctionLoad::trace(TracePattern::Periodic, 30.0, SimDuration::from_secs(60), 1),
        ];
        let w = Workload::build(&loads, 42);
        assert_eq!(w.functions(), 2);
        let f0 = w.arrivals().iter().filter(|(_, f)| *f == 0).count();
        assert_eq!(f0, 100);
        assert!(!w.is_empty());
        assert!(w.end_time() > SimTime::ZERO);
    }

    #[test]
    fn build_is_deterministic() {
        let loads = [FunctionLoad::trace(
            TracePattern::Bursty,
            50.0,
            SimDuration::from_mins(3),
            7,
        )];
        assert_eq!(Workload::build(&loads, 1), Workload::build(&loads, 1));
        assert_ne!(Workload::build(&loads, 1), Workload::build(&loads, 2));
    }

    #[test]
    fn functions_get_independent_streams() {
        let loads = [
            FunctionLoad::trace(TracePattern::Periodic, 10.0, SimDuration::from_mins(2), 1),
            FunctionLoad::trace(TracePattern::Periodic, 10.0, SimDuration::from_mins(2), 1),
        ];
        let w = Workload::build(&loads, 3);
        let f0: Vec<SimTime> = w
            .arrivals()
            .iter()
            .filter(|(_, f)| *f == 0)
            .map(|(t, _)| *t)
            .collect();
        let f1: Vec<SimTime> = w
            .arrivals()
            .iter()
            .filter(|(_, f)| *f == 1)
            .map(|(t, _)| *t)
            .collect();
        assert_ne!(f0, f1, "same trace config must still sample independently");
    }

    #[test]
    fn observed_rps_matches_constant_load() {
        let loads = [FunctionLoad::constant(40.0, SimDuration::from_secs(10))];
        let w = Workload::build(&loads, 0);
        let rps = w.observed_rps(0, SimTime::ZERO, SimTime::from_secs(10));
        assert!((rps - 40.0).abs() < 1.0);
    }

    #[test]
    fn explicit_arrivals_pass_through_sorted() {
        let times = vec![
            SimTime::from_secs(9),
            SimTime::from_secs(1),
            SimTime::from_secs(5),
        ];
        let load = FunctionLoad::explicit(times);
        assert!(load.series().is_none());
        let w = Workload::build(&[load], 3);
        let ts: Vec<SimTime> = w.arrivals().iter().map(|(t, _)| *t).collect();
        assert_eq!(
            ts,
            vec![
                SimTime::from_secs(1),
                SimTime::from_secs(5),
                SimTime::from_secs(9)
            ]
        );
        // Explicit loads ignore the seed entirely.
        assert_eq!(w, Workload::build(&[FunctionLoad::explicit(ts)], 99));
    }

    #[test]
    fn empty_workload() {
        let w = Workload::build(&[], 0);
        assert!(w.is_empty());
        assert_eq!(w.end_time(), SimTime::ZERO);
    }
}
