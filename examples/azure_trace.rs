//! Azure-trace round trip: export a synthetic multi-function workload
//! in the Azure Functions CSV format, read it back, classify each row
//! into the paper's Fig. 10 pattern classes, and replay it on INFless.
//!
//! Point `INFLESS_TRACE` at a real Azure-format CSV to replay that
//! instead.
//!
//! ```sh
//! cargo run --release --example azure_trace
//! ```

use infless::cluster::ClusterSpec;
use infless::core::engine::FunctionInfo;
use infless::core::platform::{InflessConfig, InflessPlatform};
use infless::models::ModelId;
use infless::sim::SimDuration;
use infless::workload::trace_io::{read_csv, series_to_row, write_csv, TraceRow};
use infless::workload::{TracePattern, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let duration = SimDuration::from_hours(2);
    let rows: Vec<TraceRow> = match std::env::var("INFLESS_TRACE") {
        Ok(path) => {
            println!("replaying trace file {path}\n");
            read_csv(std::fs::File::open(path)?)?
        }
        Err(_) => {
            // Export three generated traces in the Azure format first.
            let rows: Vec<TraceRow> = TracePattern::evaluation_set()
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    series_to_row(
                        format!("fn-{}", p.name()),
                        &p.generate(60.0, duration, 90 + i as u64),
                    )
                })
                .collect();
            let path = std::env::temp_dir().join("infless-azure-trace.csv");
            write_csv(&rows, std::fs::File::create(&path)?)?;
            println!(
                "wrote synthetic Azure-format trace to {} — reading it back\n",
                path.display()
            );
            read_csv(std::fs::File::open(&path)?)?
        }
    };

    // Classify and deploy one model per row.
    let zoo = [
        ModelId::Ssd,
        ModelId::MobileNet,
        ModelId::ResNet20,
        ModelId::TextCnn69,
    ];
    let mut functions = Vec::new();
    let mut loads = Vec::new();
    println!("{:<20} {:>12} {:>12}", "function", "invocations", "class");
    for (i, row) in rows.iter().enumerate() {
        println!(
            "{:<20} {:>12} {:>12}",
            row.name(),
            row.total_invocations(),
            row.classify().name()
        );
        functions.push(FunctionInfo::new(
            zoo[i % zoo.len()].spec(),
            SimDuration::from_millis(200),
        ));
        loads.push(row.to_load());
    }

    let workload = Workload::build(&loads, 91);
    let report = InflessPlatform::new(
        ClusterSpec::testbed(),
        functions,
        InflessConfig::default(),
        91,
    )
    .run(&workload);

    println!(
        "\nreplay: {} completed, {} dropped, {:.2}% SLO violations, thpt/resource {:.3}",
        report.total_completed(),
        report.total_dropped(),
        report.violation_rate() * 100.0,
        report.throughput_per_resource()
    );
    Ok(())
}
