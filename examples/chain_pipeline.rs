//! Function chains: the paper's §7 future-work extension.
//!
//! A two-stage OSVT-style pipeline — SSD object detection feeding
//! ResNet-50 classification — under a single 400 ms *end-to-end* SLO.
//! The platform splits the budget across the stages in proportion to
//! their minimum achievable latencies, serves each stage with the full
//! INFless machinery, and relays completions to the next stage.
//!
//! ```sh
//! cargo run --release --example chain_pipeline
//! ```

use infless::cluster::ClusterSpec;
use infless::core::chains::ChainSpec;
use infless::core::engine::FunctionInfo;
use infless::core::platform::{InflessConfig, InflessPlatform};
use infless::models::ModelId;
use infless::sim::SimDuration;
use infless::workload::{FunctionLoad, TracePattern, Workload};

fn main() {
    let functions = vec![
        FunctionInfo::new(ModelId::Ssd.spec(), SimDuration::from_millis(200)),
        FunctionInfo::new(ModelId::ResNet50.spec(), SimDuration::from_millis(200)),
    ];
    let chain = ChainSpec::new(
        "detect-then-classify",
        vec![0, 1],
        SimDuration::from_millis(400),
    );

    // Traffic only enters the chain head; stage 2 load is pure relay.
    let duration = SimDuration::from_mins(5);
    let loads = vec![
        FunctionLoad::trace(TracePattern::Bursty, 80.0, duration, 7),
        FunctionLoad::constant(0.001, SimDuration::from_secs(1)),
    ];
    let workload = Workload::build(&loads, 7);

    let platform = InflessPlatform::with_chains(
        ClusterSpec::testbed(),
        functions,
        vec![chain],
        InflessConfig::default(),
        7,
    );
    let report = platform.run(&workload);

    println!("pipeline: SSD -> ResNet-50, end-to-end SLO 400 ms\n");
    println!("per-stage (split SLOs):");
    for f in &report.functions {
        if f.completed < 10 {
            continue;
        }
        let lat = &f.latency_ms;
        println!(
            "  {:<11} slo={:<8} n={:<6} p50={:>6.1}ms p99={:>6.1}ms",
            f.name,
            f.slo.to_string(),
            f.completed,
            lat.quantile(0.5).unwrap_or(0.0),
            lat.quantile(0.99).unwrap_or(0.0),
        );
    }
    for chain in &report.chains {
        let e2e = &chain.e2e_ms;
        println!(
            "\nchain '{}': {} traversals, {} lost, e2e p50 {:.1} ms, p99 {:.1} ms, violations {:.2}%",
            chain.name,
            chain.completed,
            chain.lost,
            e2e.quantile(0.5).unwrap_or(0.0),
            e2e.quantile(0.99).unwrap_or(0.0),
            chain.violation_rate() * 100.0
        );
    }
}
