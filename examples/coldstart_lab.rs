//! Cold-start lab: the same sporadic workload served three times, with
//! the cold-start manager running LSTH, HHP, and a fixed 300 s window
//! (the Fig. 16 comparison at example scale).
//!
//! ```sh
//! cargo run --release --example coldstart_lab
//! ```

use infless::cluster::ClusterSpec;
use infless::core::engine::FunctionInfo;
use infless::core::platform::{ColdStartConfig, InflessConfig, InflessPlatform};
use infless::models::ModelId;
use infless::sim::SimDuration;
use infless::workload::{FunctionLoad, TracePattern, Workload};

fn main() {
    let duration = SimDuration::from_hours(8);
    let functions = vec![
        FunctionInfo::new(ModelId::Ssd.spec(), SimDuration::from_millis(200)),
        FunctionInfo::new(ModelId::TextCnn69.spec(), SimDuration::from_millis(200)),
    ];
    let loads: Vec<FunctionLoad> = (0..functions.len())
        .map(|i| FunctionLoad::trace(TracePattern::Sporadic, 8.0, duration, 55 + i as u64))
        .collect();
    let workload = Workload::build(&loads, 55);
    println!(
        "Sporadic workload, {} requests over {} — comparing cold-start policies\n",
        workload.len(),
        duration
    );

    let policies = [
        ("LSTH (γ=0.5)", ColdStartConfig::Lsth { gamma: 0.5 }),
        ("HHP (4h)", ColdStartConfig::Hhp),
        (
            "fixed 300s",
            ColdStartConfig::Fixed(SimDuration::from_secs(300)),
        ),
    ];

    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>16}",
        "policy", "cold rate", "cold starts", "violations", "idle waste (u·s)"
    );
    for (name, coldstart) in policies {
        let config = InflessConfig {
            coldstart,
            ..InflessConfig::default()
        };
        let report = InflessPlatform::new(ClusterSpec::testbed(), functions.clone(), config, 55)
            .run(&workload);
        println!(
            "{:<14} {:>9.2}% {:>12} {:>11.2}% {:>16.0}",
            name,
            report.cold_request_rate() * 100.0,
            report.cold_launches,
            report.violation_rate() * 100.0,
            report.weighted_idle_seconds
        );
    }
}
