//! OSVT scenario: the online second-hand vehicle trading application
//! (SSD + MobileNet + ResNet-50, SLO 200 ms) under the three
//! production-trace patterns of Fig. 10, on INFless.
//!
//! ```sh
//! cargo run --release --example osvt
//! ```

use infless::cluster::ClusterSpec;
use infless::core::apps::Application;
use infless::core::platform::{InflessConfig, InflessPlatform};
use infless::sim::SimDuration;
use infless::workload::{FunctionLoad, TracePattern, Workload};

fn main() {
    let app = Application::osvt();
    let duration = SimDuration::from_mins(20);
    let mean_rps = 80.0;

    for pattern in TracePattern::evaluation_set() {
        let loads: Vec<FunctionLoad> = app
            .functions()
            .iter()
            .enumerate()
            .map(|(i, _)| FunctionLoad::trace(pattern, mean_rps, duration, 100 + i as u64))
            .collect();
        let workload = Workload::build(&loads, 7);
        let report = InflessPlatform::new(
            ClusterSpec::testbed(),
            app.functions().to_vec(),
            InflessConfig::default(),
            7,
        )
        .run(&workload);

        println!(
            "--- {} trace ({} requests over {}) ---",
            pattern,
            workload.len(),
            duration
        );
        println!(
            "  completed {}  dropped {}  SLO violations {:.2}%  thpt/resource {:.3}",
            report.total_completed(),
            report.total_dropped(),
            report.violation_rate() * 100.0,
            report.throughput_per_resource()
        );
        for f in &report.functions {
            let lat = &f.latency_ms;
            println!(
                "  {:<11} n={:<6} p50={:>7.1}ms p99={:>7.1}ms queue={:>6.1}ms exec={:>6.1}ms cold-rate={:>4.1}%",
                f.name,
                f.completed,
                lat.quantile(0.50).unwrap_or(0.0),
                lat.quantile(0.99).unwrap_or(0.0),
                f.queue_ms.mean(),
                f.exec_ms.mean(),
                f.cold_rate() * 100.0,
            );
        }
        println!();
    }
}
