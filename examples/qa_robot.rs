//! Q&A robot scenario: TextCNN-69 + LSTM-2365 + DSSM-2389 under a
//! tight 50 ms SLO. Shows the non-uniform batching at work: the
//! per-batchsize completion mix and per-instance configurations the
//! scheduler picked (the paper's Fig. 13 view).
//!
//! ```sh
//! cargo run --release --example qa_robot
//! ```

use infless::cluster::ClusterSpec;
use infless::core::apps::Application;
use infless::core::platform::{InflessConfig, InflessPlatform};
use infless::sim::SimDuration;
use infless::workload::{FunctionLoad, TracePattern, Workload};

fn main() {
    let app = Application::qa_robot();
    let duration = SimDuration::from_mins(15);
    let loads: Vec<FunctionLoad> = app
        .functions()
        .iter()
        .enumerate()
        .map(|(i, _)| FunctionLoad::trace(TracePattern::Bursty, 150.0, duration, 31 + i as u64))
        .collect();
    let workload = Workload::build(&loads, 13);

    let report = InflessPlatform::new(
        ClusterSpec::testbed(),
        app.functions().to_vec(),
        InflessConfig::default(),
        13,
    )
    .run(&workload);

    println!(
        "Q&A robot, bursty load, {} requests over {} — SLO 50 ms\n",
        workload.len(),
        duration
    );
    println!(
        "overall: completed {}  dropped {}  violations {:.2}%\n",
        report.total_completed(),
        report.total_dropped(),
        report.violation_rate() * 100.0
    );

    for f in &report.functions {
        let lat = &f.latency_ms;
        println!(
            "{} — p50 {:.1} ms, p99 {:.1} ms",
            f.name,
            lat.quantile(0.5).unwrap_or(0.0),
            lat.quantile(0.99).unwrap_or(0.0)
        );
        let mut batches: Vec<(u32, u64)> = f
            .per_batch_completed
            .iter()
            .map(|(b, n)| (*b, *n))
            .collect();
        batches.sort_unstable();
        for (b, n) in batches {
            let share = n as f64 / f.completed.max(1) as f64 * 100.0;
            println!("  batchsize {b:>2}: {n:>7} requests ({share:>5.1}%)");
        }
    }

    println!("\ninstance configurations launched (function, batch, resources -> count):");
    let mut configs: Vec<_> = report.config_launches.iter().collect();
    configs.sort_by_key(|((f, c), _)| (*f, c.batch(), c.resources().cpu_cores()));
    for ((f, cfg), n) in configs {
        println!("  {:<11} {} x{}", report.functions[*f].name, cfg, n);
    }
}
