//! Quickstart: deploy the OSVT application on INFless and both
//! baselines, drive the same constant load, and compare the headline
//! numbers (the paper's §5.2 story in miniature).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use infless::baselines::{BatchPlatform, CostModel, OpenFaasPlus};
use infless::cluster::ClusterSpec;
use infless::core::apps::Application;
use infless::core::platform::{InflessConfig, InflessPlatform};
use infless::core::RunReport;
use infless::sim::SimDuration;
use infless::workload::{FunctionLoad, Workload};

fn main() {
    let app = Application::osvt();
    let rps = 120.0;
    let duration = SimDuration::from_secs(120);
    let loads: Vec<FunctionLoad> = app
        .functions()
        .iter()
        .map(|_| FunctionLoad::constant(rps, duration))
        .collect();
    let workload = Workload::build(&loads, 42);
    println!(
        "OSVT application ({} functions, SLO 200 ms), {} RPS/function for {}\n",
        app.functions().len(),
        rps,
        duration
    );

    let cluster = ClusterSpec::testbed();
    let reports: Vec<RunReport> = vec![
        OpenFaasPlus::new(cluster, app.functions().to_vec(), 42).run(&workload),
        BatchPlatform::new(cluster, app.functions().to_vec(), 42).run(&workload),
        InflessPlatform::new(
            cluster,
            app.functions().to_vec(),
            InflessConfig::default(),
            42,
        )
        .run(&workload),
    ];

    let cost = CostModel::default();
    println!(
        "{:<10} {:>10} {:>8} {:>10} {:>12} {:>10} {:>12}",
        "system", "completed", "dropped", "SLO-viol", "thpt/res", "cold-rate", "$/request"
    );
    for r in &reports {
        let c = cost.summarize(r);
        println!(
            "{:<10} {:>10} {:>8} {:>9.1}% {:>12.3} {:>9.1}% {:>12.2e}",
            r.platform,
            r.total_completed(),
            r.total_dropped(),
            r.violation_rate() * 100.0,
            r.throughput_per_resource(),
            r.cold_request_rate() * 100.0,
            c.cost_per_request
        );
    }

    let base = reports[0].throughput_per_resource();
    let batch = reports[1].throughput_per_resource();
    let infless = reports[2].throughput_per_resource();
    println!(
        "\nINFless throughput per unit of resource: {:.1}x OpenFaaS+, {:.1}x BATCH",
        infless / base,
        infless / batch
    );
}
