//! Trace replay: a fraud-detection-style function under the Fig. 9a
//! diurnal (LTP + STB) shape for 24 simulated hours. Prints the
//! provisioning timeline next to the offered load — the Fig. 14 view —
//! showing the auto-scaler tracking the load up *and* down.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use infless::cluster::ClusterSpec;
use infless::core::engine::FunctionInfo;
use infless::core::platform::{InflessConfig, InflessPlatform};
use infless::models::ModelId;
use infless::sim::SimDuration;
use infless::workload::{FunctionLoad, TracePattern, Workload};

fn main() {
    let duration = SimDuration::from_hours(24);
    let functions = vec![FunctionInfo::new(
        ModelId::ResNet50.spec(),
        SimDuration::from_millis(200),
    )];
    let load = FunctionLoad::trace(TracePattern::Diurnal, 60.0, duration, 2024);
    let series = load.series().expect("trace loads are curve-driven").clone();
    let workload = Workload::build(&[load], 2024);

    println!(
        "Replaying a 24 h diurnal trace ({} requests, mean 60 RPS) for ResNet-50\n",
        workload.len()
    );
    let report = InflessPlatform::new(
        ClusterSpec::testbed(),
        functions,
        InflessConfig::default(),
        2024,
    )
    .run(&workload);

    println!(
        "completed {}  dropped {}  violations {:.2}%  launches {}  retirements {}\n",
        report.total_completed(),
        report.total_dropped(),
        report.violation_rate() * 100.0,
        report.launches,
        report.retirements
    );

    // Downsample the provisioning timeline to one point per half hour.
    println!("{:>6} {:>10} {:>14}", "hour", "load RPS", "provisioned");
    let step = 1800.0;
    let mut next = 0.0;
    for (t, used) in &report.provisioning {
        if *t + 1e-9 < next {
            continue;
        }
        next = t + step;
        let rps = series.rate_at(infless::sim::SimTime::from_secs(*t as u64));
        let bar = "#".repeat((used / 10.0).round() as usize);
        println!("{:>6.1} {:>10.1} {:>14.1}  {}", t / 3600.0, rps, used, bar);
    }
}
