//! `inflessctl` — run a deployment scenario from a JSON descriptor.
//!
//! ```sh
//! cargo run --release --bin inflessctl -- scenarios/osvt.json
//! cargo run --release --bin inflessctl -- scenarios/osvt.json --seed 7 --json
//! ```

use std::process::ExitCode;

use infless::core::RunReport;
use infless::descriptor::Scenario;

const USAGE: &str = "usage: inflessctl <scenario.json> [--seed N] [--json]

Runs a deployment scenario (see scenarios/ for examples) and prints the
run report. --seed overrides the scenario's seed; --json emits the
summary as JSON instead of a table.";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut path: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut json = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) => seed = Some(v),
                _ => return usage("--seed needs an integer"),
            },
            "--json" => json = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => return usage(&format!("unexpected argument {other:?}")),
        }
    }
    let Some(path) = path else {
        return usage("missing scenario path");
    };

    let mut scenario = match Scenario::from_file(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(seed) = seed {
        scenario.seed = seed;
    }
    match scenario.run() {
        Ok(report) => {
            if json {
                print_json(&report);
            } else {
                print_table(&report);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}\n\n{USAGE}");
    ExitCode::FAILURE
}

fn print_table(report: &RunReport) {
    println!(
        "{} served {} requests over {} ({} dropped, {:.2}% SLO violations)",
        report.platform,
        report.total_completed(),
        report.duration,
        report.total_dropped(),
        report.violation_rate() * 100.0
    );
    println!(
        "throughput/resource {:.3}   cold-start rate {:.3}%   launches {}   retirements {}",
        report.throughput_per_resource(),
        report.cold_request_rate() * 100.0,
        report.launches,
        report.retirements
    );
    let f = &report.failures;
    if f.any() {
        println!(
            "faults: {} crashes ({} recovered), {} instances killed, {} cold-start failures, \
             {} stragglers; displaced {} = retried {} + shed {}{}",
            f.server_crashes,
            f.server_recoveries,
            f.instances_killed,
            f.coldstart_failures,
            f.stragglers,
            f.requests_displaced,
            f.requests_retried,
            f.requests_shed,
            f.mean_time_to_recapacity_ms()
                .map_or_else(String::new, |m| format!(
                    "; mean time-to-recapacity {m:.0} ms"
                )),
        );
    }
    println!();
    println!(
        "{:<14} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "function", "completed", "p50 ms", "p99 ms", "viol %", "cold %"
    );
    for f in &report.functions {
        let lat = &f.latency_ms;
        println!(
            "{:<14} {:>10} {:>9.1} {:>9.1} {:>9.2} {:>9.2}",
            f.name,
            f.completed,
            lat.quantile(0.5).unwrap_or(0.0),
            lat.quantile(0.99).unwrap_or(0.0),
            f.violation_rate() * 100.0,
            f.cold_rate() * 100.0
        );
    }
    for c in &report.chains {
        let e2e = &c.e2e_ms;
        println!(
            "\nchain {:<10} {:>8} traversals  e2e p50 {:>7.1} ms  p99 {:>7.1} ms  viol {:.2}%",
            c.name,
            c.completed,
            e2e.quantile(0.5).unwrap_or(0.0),
            e2e.quantile(0.99).unwrap_or(0.0),
            c.violation_rate() * 100.0
        );
    }
}

fn print_json(report: &RunReport) {
    let functions: Vec<serde_json::Value> = report
        .functions
        .iter()
        .map(|f| {
            let lat = &f.latency_ms;
            serde_json::json!({
                "name": f.name,
                "completed": f.completed,
                "dropped": f.dropped,
                "p50_ms": lat.quantile(0.5),
                "p99_ms": lat.quantile(0.99),
                "violation_rate": f.violation_rate(),
                "cold_rate": f.cold_rate(),
            })
        })
        .collect();
    let chains: Vec<serde_json::Value> = report
        .chains
        .iter()
        .map(|c| {
            let e2e = &c.e2e_ms;
            serde_json::json!({
                "name": c.name,
                "completed": c.completed,
                "lost": c.lost,
                "e2e_p50_ms": e2e.quantile(0.5),
                "e2e_p99_ms": e2e.quantile(0.99),
                "violation_rate": c.violation_rate(),
            })
        })
        .collect();
    let out = serde_json::json!({
        "platform": report.platform,
        "duration_s": report.duration.as_secs_f64(),
        "completed": report.total_completed(),
        "dropped": report.total_dropped(),
        "violation_rate": report.violation_rate(),
        "throughput_per_resource": report.throughput_per_resource(),
        "cold_request_rate": report.cold_request_rate(),
        "failures": report.failures,
        "functions": functions,
        "chains": chains,
    });
    println!(
        "{}",
        serde_json::to_string_pretty(&out).expect("valid json")
    );
}
