//! `inflessctl` — run a deployment scenario from a JSON descriptor.
//!
//! ```sh
//! cargo run --release --bin inflessctl -- scenarios/osvt.json
//! cargo run --release --bin inflessctl -- scenarios/osvt.json --seed 7 --json
//! cargo run --release --bin inflessctl -- scenarios/failure_sweep.json \
//!     --trace-out trace.jsonl --timeseries-out gauges.csv
//! cargo run --release --bin inflessctl -- trace summary trace.jsonl
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use infless::core::RunReport;
use infless::descriptor::Scenario;
use infless::telemetry::{analyze_file, summarize_file, FileSink};
use infless::RunConfig;

const USAGE: &str = "usage: inflessctl <scenario.json> [--seed N] [--json]
                  [--shards N] [--canonical-json]
                  [--trace-out <path.jsonl>] [--timeseries-out <path.csv>]
                  [--decisions-out <path.jsonl>] [--metrics-out <path.prom>]
                  [--flight-out <path.jsonl>]
       inflessctl trace summary <trace.jsonl>
       inflessctl trace analyze <decisions.jsonl>

Runs a deployment scenario (see scenarios/ for examples) and prints the
run report. --seed overrides the scenario's seed; --json emits the
summary as JSON instead of a table.

--shards N runs the INFless platform through the sharded epoch-barrier
engine with N shards (INFless scenarios only; telemetry streaming is
not available on this path). The report is byte-identical for every N.
--canonical-json prints the report's canonical JSON rendering — the
exact string the CI determinism gate byte-diffs between shard counts.

--trace-out streams per-request lifecycle spans (arrival, enqueued,
batch_formed, exec_start, complete, dropped, shed, displaced, retried)
to a JSONL file; --timeseries-out streams per-tick gauges (instances,
occupancy, queue depth, in-flight batches, KV residency, host cache)
to a CSV.

--decisions-out writes the decision trace: every Algorithm 1 candidate
evaluation and rejection reason, chosen configs, scale-out rounds,
consolidation commits/rollbacks, keep-alive evictions, launch startup
paths, continuous-batching admissions, and per-request SLO latency
decompositions. Works at every shard count — sharded runs merge
per-shard buffers into a byte-identical trace. --metrics-out writes an
end-of-run Prometheus text-format snapshot (gauges sampled at scaler
ticks plus final counters from the report). --flight-out arms the
flight recorder: a bounded ring of recent spans appended to the file
whenever a fault burst hits (single-core runs only, like --trace-out).

`trace summary` validates a span trace and prints conservation and
fault-displacement accounting recomputed from the spans alone; `trace
analyze` validates a decision trace and attributes every SLO violation
to the latency stage that consumed the budget. Both exit nonzero on a
malformed trace.";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("trace") {
        return trace_command(&argv[1..]);
    }

    let mut args = argv.into_iter();
    let mut path: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut json = false;
    let mut canonical = false;
    let mut shards: Option<usize> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut timeseries_out: Option<PathBuf> = None;
    let mut decisions_out: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut flight_out: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) => seed = Some(v),
                _ => return usage("--seed needs an integer"),
            },
            "--json" => json = true,
            "--canonical-json" => canonical = true,
            "--shards" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(v)) => match RunConfig::validate_explicit_shards(v) {
                    Ok(()) => shards = Some(v),
                    Err(e) => return usage(&e.to_string()),
                },
                _ => return usage("--shards needs a positive integer"),
            },
            "--trace-out" => match args.next() {
                Some(p) => trace_out = Some(PathBuf::from(p)),
                None => return usage("--trace-out needs a path"),
            },
            "--timeseries-out" => match args.next() {
                Some(p) => timeseries_out = Some(PathBuf::from(p)),
                None => return usage("--timeseries-out needs a path"),
            },
            "--decisions-out" => match args.next() {
                Some(p) => decisions_out = Some(PathBuf::from(p)),
                None => return usage("--decisions-out needs a path"),
            },
            "--metrics-out" => match args.next() {
                Some(p) => metrics_out = Some(PathBuf::from(p)),
                None => return usage("--metrics-out needs a path"),
            },
            "--flight-out" => match args.next() {
                Some(p) => flight_out = Some(PathBuf::from(p)),
                None => return usage("--flight-out needs a path"),
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => return usage(&format!("unexpected argument {other:?}")),
        }
    }
    let Some(path) = path else {
        return usage("missing scenario path");
    };

    let mut scenario = match Scenario::from_file(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(seed) = seed {
        scenario.seed = seed;
    }
    let mut config = RunConfig::new();
    if let Some(shards) = shards {
        config = config.shards(shards);
    }
    if trace_out.is_some() || timeseries_out.is_some() {
        match FileSink::create(trace_out.as_deref(), timeseries_out.as_deref()) {
            Ok(sink) => config = config.telemetry(Box::new(sink)),
            Err(e) => {
                eprintln!("error: failed to open telemetry output: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = decisions_out {
        config = config.decisions_out(path);
    }
    if let Some(path) = metrics_out {
        config = config.metrics_out(path);
    }
    if let Some(path) = flight_out {
        config = config.flight_out(path);
    }
    // An invalid combination (e.g. --shards with telemetry streaming)
    // surfaces through RunConfig::validate inside execute.
    match scenario.execute(config) {
        Ok(report) => {
            if canonical {
                println!("{}", report.canonical_json());
            } else if json {
                print_json(&report);
            } else {
                print_table(&report);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `inflessctl trace summary <path.jsonl>` — validate and summarize a
/// span trace.
fn trace_command(args: &[String]) -> ExitCode {
    match args {
        [sub, path] if sub == "summary" => match summarize_file(std::path::Path::new(path)) {
            Ok(summary) => {
                print!("{summary}");
                let mut ok = true;
                if !summary.conserved() {
                    eprintln!(
                        "error: span conservation violated: {} arrivals != {} completed + {} dropped + {} shed",
                        summary.arrivals, summary.completed, summary.dropped, summary.shed
                    );
                    ok = false;
                }
                if !summary.displacement_balanced() {
                    eprintln!(
                        "error: displacement accounting violated: {} displaced != {} retried + {} shed",
                        summary.displaced, summary.retried, summary.shed
                    );
                    ok = false;
                }
                if ok {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        [sub, path] if sub == "analyze" => match analyze_file(std::path::Path::new(path)) {
            Ok(analysis) => {
                print!("{analysis}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(
            "trace subcommands are: trace summary <trace.jsonl>, \
             trace analyze <decisions.jsonl>",
        ),
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}\n\n{USAGE}");
    ExitCode::FAILURE
}

fn print_table(report: &RunReport) {
    println!(
        "{} served {} requests over {} ({} dropped, {:.2}% SLO violations)",
        report.platform,
        report.total_completed(),
        report.duration,
        report.total_dropped(),
        report.violation_rate() * 100.0
    );
    println!(
        "throughput/resource {:.3}   cold-start rate {:.3}%   launches {}   retirements {}",
        report.throughput_per_resource(),
        report.cold_request_rate() * 100.0,
        report.launches,
        report.retirements
    );
    let f = &report.failures;
    if f.any() {
        println!(
            "faults: {} crashes ({} recovered), {} instances killed, {} cold-start failures, \
             {} stragglers; displaced {} = retried {} + shed {}{}",
            f.server_crashes,
            f.server_recoveries,
            f.instances_killed,
            f.coldstart_failures,
            f.stragglers,
            f.requests_displaced,
            f.requests_retried,
            f.requests_shed,
            f.mean_time_to_recapacity_ms()
                .map_or_else(String::new, |m| format!(
                    "; mean time-to-recapacity {m:.0} ms"
                )),
        );
    }
    let ts = &report.timeseries_summary;
    if ts.any() {
        println!(
            "timeseries: {} samples; peak {} instances (mean {:.1}), peak occupancy cpu {:.1}% \
             gpu {:.1}%, max queue depth {}, peak in-flight batches {}",
            ts.samples,
            ts.peak_instances,
            ts.mean_instances,
            ts.peak_cpu_occupancy * 100.0,
            ts.peak_gpu_occupancy * 100.0,
            ts.max_queue_depth,
            ts.peak_in_flight_batches
        );
    }
    let disp = &report.dispatch_overhead_ns;
    let sched = &report.sched_overhead_hist_us;
    if !disp.is_empty() || !sched.is_empty() {
        println!(
            "overhead: dispatch p50 {:.0} ns  p99 {:.0} ns ({} sampled)   \
             schedule p50 {:.0} µs  p99 {:.0} µs ({} rounds)",
            disp.quantile(0.5).unwrap_or(0.0),
            disp.quantile(0.99).unwrap_or(0.0),
            disp.count(),
            sched.quantile(0.5).unwrap_or(0.0),
            sched.quantile(0.99).unwrap_or(0.0),
            sched.count(),
        );
    }
    println!();
    println!(
        "{:<14} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "function", "completed", "p50 ms", "p99 ms", "viol %", "cold %"
    );
    for f in &report.functions {
        println!(
            "{:<14} {:>10} {:>9.1} {:>9.1} {:>9.2} {:>9.2}",
            f.name,
            f.completed,
            f.latency_p50_ms,
            f.latency_p99_ms,
            f.violation_rate() * 100.0,
            f.cold_rate() * 100.0
        );
    }
    for c in &report.chains {
        let e2e = &c.e2e_ms;
        println!(
            "\nchain {:<10} {:>8} traversals  e2e p50 {:>7.1} ms  p99 {:>7.1} ms  viol {:.2}%",
            c.name,
            c.completed,
            e2e.quantile(0.5).unwrap_or(0.0),
            e2e.quantile(0.99).unwrap_or(0.0),
            c.violation_rate() * 100.0
        );
    }
}

fn print_json(report: &RunReport) {
    let functions: Vec<serde_json::Value> = report
        .functions
        .iter()
        .map(|f| {
            serde_json::json!({
                "name": f.name,
                "completed": f.completed,
                "dropped": f.dropped,
                "p50_ms": f.latency_p50_ms,
                "p95_ms": f.latency_p95_ms,
                "p99_ms": f.latency_p99_ms,
                "violation_rate": f.violation_rate(),
                "cold_rate": f.cold_rate(),
            })
        })
        .collect();
    let chains: Vec<serde_json::Value> = report
        .chains
        .iter()
        .map(|c| {
            let e2e = &c.e2e_ms;
            serde_json::json!({
                "name": c.name,
                "completed": c.completed,
                "lost": c.lost,
                "e2e_p50_ms": e2e.quantile(0.5),
                "e2e_p99_ms": e2e.quantile(0.99),
                "violation_rate": c.violation_rate(),
            })
        })
        .collect();
    let out = serde_json::json!({
        "platform": report.platform,
        "duration_s": report.duration.as_secs_f64(),
        "completed": report.total_completed(),
        "dropped": report.total_dropped(),
        "violation_rate": report.violation_rate(),
        "throughput_per_resource": report.throughput_per_resource(),
        "cold_request_rate": report.cold_request_rate(),
        // Wall-clock overhead histograms are deliberately omitted:
        // `--json` output is bit-identical per seed (a verification
        // invariant), and `Instant`-based measurements are not.
        // `BENCH_hotpath.json` carries them machine-readably instead.
        "failures": report.failures,
        "timeseries_summary": report.timeseries_summary,
        "functions": functions,
        "chains": chains,
    });
    println!(
        "{}",
        serde_json::to_string_pretty(&out).expect("valid json")
    );
}
