//! Deployment descriptors: the paper's Fig. 5 function template, as a
//! JSON scenario file.
//!
//! INFless accepts inference deployments declaratively — function name,
//! model, latency SLO and batchsize cap (`faas-cli` parses the YAML in
//! the original). This module provides the equivalent for the
//! reproduction: a [`Scenario`] describing the cluster, the platform,
//! the deployed functions with their loads, and optional function
//! chains. `cargo run --bin inflessctl -- scenarios/osvt.json` runs one
//! end to end.
//!
//! # Example
//!
//! ```
//! use infless::descriptor::Scenario;
//! use infless::RunConfig;
//!
//! let json = r#"{
//!   "platform": "infless",
//!   "seed": 7,
//!   "cluster": { "servers": 2 },
//!   "functions": [
//!     { "name": "detector", "model": "SSD", "slo_ms": 200,
//!       "load": { "kind": "constant", "rps": 20.0, "duration_secs": 10 } }
//!   ]
//! }"#;
//! let scenario = Scenario::from_json(json)?;
//! let report = scenario.execute(RunConfig::new())?;
//! assert!(report.total_completed() > 0);
//! # Ok::<(), infless::descriptor::ScenarioError>(())
//! ```
//!
//! Shards, telemetry sinks, fault schedules and residency overrides
//! all ride in the [`RunConfig`] — `RunConfig::new().shards(4)`
//! replays the same scenario through the epoch-barrier sharded engine,
//! byte-identically.

use std::fmt;
use std::fs;
use std::path::Path;
use std::sync::{Arc, Mutex};

use serde::Deserialize;

use infless_baselines::{BatchPlatform, OpenFaasPlus};
use infless_cluster::ClusterSpec;
use infless_core::chains::ChainSpec;
use infless_core::engine::FunctionInfo;
use infless_core::metrics::RunReport;
use infless_core::platform::{ColdStartConfig, InflessConfig, InflessPlatform};
use infless_core::residency::ResidencyConfig;
use infless_core::runconfig::RunConfig;
use infless_core::ShardedInfless;
use infless_faults::{FaultPlan, FaultSchedule};
use infless_llm::{LlmClass, LlmConfig};
use infless_models::ModelId;
use infless_sim::SimDuration;
use infless_telemetry::{
    write_decision_trace, DecisionBufferSink, DecisionRecord, FlightRecorder, GaugeRow,
    MetricsHandle, MetricsRegistry, SpanEvent, TelemetrySink, TraceMeta,
};
use infless_workload::{FunctionLoad, TracePattern, Workload};

/// Which platform serves the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum PlatformKind {
    /// The paper's system.
    Infless,
    /// The one-to-one baseline.
    Openfaas,
    /// The OTP batching baseline.
    Batch,
}

/// Cluster shape (defaults to the Table 2 testbed).
#[derive(Debug, Clone, Copy, Deserialize)]
#[serde(default, deny_unknown_fields)]
pub struct ClusterDescriptor {
    /// Number of servers.
    pub servers: usize,
    /// CPU threads per server.
    pub cores_per_server: u32,
    /// GPUs per server.
    pub gpus_per_server: usize,
    /// Memory per server, MB.
    pub mem_per_server_mb: f64,
    /// Device memory per GPU, MB (0 = hardware default).
    pub gpu_mem_per_device_mb: f64,
}

impl Default for ClusterDescriptor {
    fn default() -> Self {
        let t = ClusterSpec::testbed();
        ClusterDescriptor {
            servers: t.servers,
            cores_per_server: t.cores_per_server,
            gpus_per_server: t.gpus_per_server,
            mem_per_server_mb: t.mem_per_server_mb,
            gpu_mem_per_device_mb: t.gpu_mem_per_device_mb,
        }
    }
}

impl ClusterDescriptor {
    fn to_spec(self) -> ClusterSpec {
        ClusterSpec {
            servers: self.servers,
            cores_per_server: self.cores_per_server,
            gpus_per_server: self.gpus_per_server,
            mem_per_server_mb: self.mem_per_server_mb,
            gpu_mem_per_device_mb: self.gpu_mem_per_device_mb,
        }
    }
}

/// The load offered to one function.
#[derive(Debug, Clone, Deserialize)]
#[serde(tag = "kind", rename_all = "lowercase", deny_unknown_fields)]
pub enum LoadDescriptor {
    /// Evenly-spaced arrivals.
    Constant {
        /// Requests per second.
        rps: f64,
        /// Load duration in seconds.
        duration_secs: u64,
    },
    /// A synthetic production-trace pattern (Poisson arrivals).
    Trace {
        /// `sporadic` / `periodic` / `bursty` / `diurnal`.
        pattern: String,
        /// Time-average RPS.
        mean_rps: f64,
        /// Load duration in seconds.
        duration_secs: u64,
    },
    /// A row of an Azure-format invocation CSV, replayed as Poisson
    /// arrivals per minute.
    Csv {
        /// Path to the trace file (relative to the working directory).
        path: String,
        /// The row's function identifier.
        function: String,
    },
    /// No external load (chain-interior stages).
    None,
}

/// The autoregressive class of one function, by workload archetype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum LlmClassKind {
    /// Interactive chat: short prompts/outputs, tight TTFT and TPOT.
    Chat,
    /// Batch summarization: long prompts/outputs, loose per-token
    /// targets (the end-to-end SLO dominates).
    Summarize,
}

impl LlmClassKind {
    fn to_class(self) -> LlmClass {
        match self {
            LlmClassKind::Chat => LlmClass::chat(),
            LlmClassKind::Summarize => LlmClass::summarize(),
        }
    }
}

/// One deployed function (the Fig. 5 template).
#[derive(Debug, Clone, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct FunctionDescriptor {
    /// The function's name (referenced by chains).
    pub name: String,
    /// Model name from the zoo (case/separator-insensitive).
    pub model: String,
    /// Latency SLO in milliseconds.
    pub slo_ms: u64,
    /// Optional batchsize cap (`maxBatchsize`).
    #[serde(default)]
    pub max_batch: Option<u32>,
    /// Optional autoregressive class (`chat` / `summarize`). Requires
    /// the scenario's `llm` block to be enabled; omitted means the
    /// function serves one-shot inference.
    #[serde(default)]
    pub llm_class: Option<LlmClassKind>,
    /// The offered load.
    pub load: LoadDescriptor,
}

/// A function chain (the §7 extension).
#[derive(Debug, Clone, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ChainDescriptor {
    /// The chain's name.
    pub name: String,
    /// Stage function names, in order.
    pub stages: Vec<String>,
    /// End-to-end SLO in milliseconds.
    pub e2e_slo_ms: u64,
}

/// A complete, runnable scenario.
#[derive(Debug, Clone, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Scenario {
    /// The platform to run (`infless` / `openfaas` / `batch`).
    pub platform: PlatformKind,
    /// Run seed (all randomness derives from it).
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Cluster shape (Table 2 testbed by default).
    #[serde(default)]
    pub cluster: ClusterDescriptor,
    /// The deployed functions.
    pub functions: Vec<FunctionDescriptor>,
    /// Function chains (INFless platform only).
    #[serde(default)]
    pub chains: Vec<ChainDescriptor>,
    /// Optional fault-injection plan (per-hour rates for server
    /// crashes, instance kills, cold-start failures and stragglers).
    /// Omitted or all-zero means a healthy cluster.
    #[serde(default)]
    pub faults: Option<FaultPlan>,
    /// GPU memory-tier knobs (INFless platform only). Omitted means
    /// disabled — the run stays bit-identical to the pre-tier engine.
    #[serde(default)]
    pub residency: ResidencyConfig,
    /// Autoregressive (LLM) serving knobs. Omitted means disabled —
    /// the run stays bit-identical to the pre-LLM engine.
    #[serde(default)]
    pub llm: LlmConfig,
}

fn default_seed() -> u64 {
    42
}

/// Everything a platform run needs, built once from the descriptor.
struct ScenarioParts {
    functions: Vec<FunctionInfo>,
    workload: Workload,
    chains: Vec<ChainSpec>,
    cluster: ClusterSpec,
    schedule: FaultSchedule,
}

/// Wraps a run's telemetry sink with a decisions tap: every decision
/// record is buffered (for the `--decisions-out` artifact) *and*
/// forwarded to the inner sink. The tap reports `decisions_enabled`
/// itself but delegates `enabled` — wrapping a [`infless_telemetry::NullSink`]
/// turns on decision emission without paying for span construction.
#[derive(Debug)]
struct DecisionTap {
    inner: Box<dyn TelemetrySink>,
    buf: DecisionBufferSink,
    meta: Arc<Mutex<Option<TraceMeta>>>,
}

impl TelemetrySink for DecisionTap {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn begin(&mut self, meta: &TraceMeta) {
        *self.meta.lock().expect("trace meta poisoned") = Some(meta.clone());
        self.inner.begin(meta);
    }

    fn record(&mut self, span: SpanEvent) {
        self.inner.record(span);
    }

    fn sample(&mut self, row: &GaugeRow) {
        self.inner.sample(row);
    }

    fn decisions_enabled(&self) -> bool {
        true
    }

    fn record_decision(&mut self, rec: &DecisionRecord) {
        self.buf.record_decision(rec);
        self.inner.record_decision(rec);
    }

    fn finish(&mut self) {
        self.inner.finish();
    }
}

/// Sorts decision records into their canonical `(t_s, function, seq)`
/// total order — the order the sharded merge uses, so single-core and
/// sharded artifacts are directly comparable.
fn sort_decisions(records: &mut [DecisionRecord]) {
    records.sort_by(|a, b| {
        let (ta, fa, sa) = a.sort_key();
        let (tb, fb, sb) = b.sort_key();
        ta.total_cmp(&tb).then(fa.cmp(&fb)).then(sa.cmp(&sb))
    });
}

/// Folds the finished report's totals into the metrics registry as
/// counter families and writes the Prometheus text snapshot.
fn export_metrics(
    report: &RunReport,
    handle: &MetricsHandle,
    path: &Path,
) -> Result<(), ScenarioError> {
    let mut reg = handle.lock().expect("metrics registry poisoned");
    for f in &report.functions {
        let labels = [("function", f.name.as_str())];
        reg.counter_add(
            "infless_requests_completed_total",
            "Requests completed.",
            &labels,
            f.completed as f64,
        );
        reg.counter_add(
            "infless_requests_dropped_total",
            "Requests dropped at the gateway.",
            &labels,
            f.dropped as f64,
        );
        reg.counter_add(
            "infless_slo_violations_total",
            "Completed requests that exceeded their latency SLO.",
            &labels,
            f.violations as f64,
        );
        reg.counter_add(
            "infless_cold_requests_total",
            "Completed requests that observed a cold start.",
            &labels,
            f.cold_requests as f64,
        );
    }
    for (path_label, count) in [
        ("cold", report.cold_launches),
        ("pre_warmed", report.prewarmed_launches),
        ("swap_in", report.swap_launches),
    ] {
        reg.counter_add(
            "infless_launches_total",
            "Instance launches by startup path.",
            &[("path", path_label)],
            count as f64,
        );
    }
    reg.write_to(path).map_err(ScenarioError::Io)
}

/// Errors building or running a scenario.
#[derive(Debug)]
pub enum ScenarioError {
    /// File could not be read.
    Io(std::io::Error),
    /// JSON was malformed.
    Json(serde_json::Error),
    /// The scenario was semantically invalid.
    Invalid(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Io(e) => write!(f, "failed to read scenario: {e}"),
            ScenarioError::Json(e) => write!(f, "failed to parse scenario: {e}"),
            ScenarioError::Invalid(m) => write!(f, "invalid scenario: {m}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Io(e) => Some(e),
            ScenarioError::Json(e) => Some(e),
            ScenarioError::Invalid(_) => None,
        }
    }
}

impl From<std::io::Error> for ScenarioError {
    fn from(e: std::io::Error) -> Self {
        ScenarioError::Io(e)
    }
}

impl From<serde_json::Error> for ScenarioError {
    fn from(e: serde_json::Error) -> Self {
        ScenarioError::Json(e)
    }
}

impl Scenario {
    /// Parses a scenario from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Json`] on malformed JSON and
    /// [`ScenarioError::Invalid`] on semantic problems (unknown model,
    /// unknown chain stage, …).
    pub fn from_json(json: &str) -> Result<Self, ScenarioError> {
        let scenario: Scenario = serde_json::from_str(json)?;
        scenario.validate()?;
        Ok(scenario)
    }

    /// Loads a scenario from a file.
    ///
    /// # Errors
    ///
    /// As [`Scenario::from_json`], plus I/O errors.
    pub fn from_file(path: impl AsRef<Path>) -> Result<Self, ScenarioError> {
        Self::from_json(&fs::read_to_string(path)?)
    }

    fn validate(&self) -> Result<(), ScenarioError> {
        if self.functions.is_empty() {
            return Err(ScenarioError::Invalid("no functions declared".into()));
        }
        for f in &self.functions {
            f.model
                .parse::<ModelId>()
                .map_err(|e| ScenarioError::Invalid(e.to_string()))?;
            if f.slo_ms == 0 {
                return Err(ScenarioError::Invalid(format!(
                    "function {:?} has a zero SLO",
                    f.name
                )));
            }
            if let LoadDescriptor::Trace { pattern, .. } = &f.load {
                parse_pattern(pattern)?;
            }
            if f.llm_class.is_some() && !self.llm.enabled {
                return Err(ScenarioError::Invalid(format!(
                    "function {:?} declares an llm_class but the scenario's \
                     llm block is disabled",
                    f.name
                )));
            }
        }
        for c in &self.chains {
            if self.platform != PlatformKind::Infless {
                return Err(ScenarioError::Invalid(
                    "function chains require the INFless platform".into(),
                ));
            }
            for stage in &c.stages {
                if !self.functions.iter().any(|f| &f.name == stage) {
                    return Err(ScenarioError::Invalid(format!(
                        "chain {:?} references unknown function {stage:?}",
                        c.name
                    )));
                }
            }
        }
        Ok(())
    }

    /// Builds the function table, chains and workload, runs the chosen
    /// platform to completion under `config`, and returns the report.
    ///
    /// The [`RunConfig`] carries everything that varies a run of the
    /// same descriptor: shard count (an explicit count — even 1 —
    /// drives the INFless platform through the epoch-barrier
    /// [`ShardedInfless`] engine, byte-identically for every shard
    /// count), a telemetry sink
    /// (attaching [`infless_telemetry::NullSink`] is bit-identical to
    /// attaching none), an explicit fault schedule (overrides the
    /// descriptor's `faults` plan when set), and a residency override
    /// (overrides the descriptor's `residency` block when set).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] if a CSV load cannot be read or a
    /// referenced row is missing; [`ScenarioError::Invalid`] when
    /// `config` fails [`RunConfig::validate`] or requests a sharded
    /// run for a baseline platform (only the INFless engine is
    /// sharded).
    pub fn execute(&self, config: RunConfig) -> Result<RunReport, ScenarioError> {
        config
            .validate()
            .map_err(|e| ScenarioError::Invalid(e.to_string()))?;
        let sharded = config.is_sharded().then(|| config.effective_shards());
        let llm = config.llm.unwrap_or(self.llm);
        let mut parts = self.build_parts(llm)?;
        if let Some(schedule) = config.fault_schedule {
            parts.schedule = schedule;
        }
        let decisions_out = config.decisions_out;
        let metrics_out = config.metrics_out;
        let flight_out = config.flight_out;
        let metrics = metrics_out.as_ref().map(|_| MetricsRegistry::handle());
        let infless_config = self.infless_config(config.residency, llm);

        if let Some(shards) = sharded {
            if self.platform != PlatformKind::Infless {
                return Err(ScenarioError::Invalid(
                    "sharded execution requires the INFless platform".into(),
                ));
            }
            let meta = TraceMeta {
                platform: "INFless".to_string(),
                functions: parts
                    .functions
                    .iter()
                    .map(|f| f.spec().name().to_string())
                    .collect(),
            };
            let mut runner = ShardedInfless::with_chains(
                parts.cluster,
                parts.functions,
                parts.chains,
                infless_config,
                self.seed,
            )
            .with_fault_schedule(parts.schedule);
            if let Some(handle) = &metrics {
                runner = runner.with_metrics(handle.clone());
            }
            let report = match &decisions_out {
                Some(path) => {
                    let (report, records) = runner.run_with_decisions(&parts.workload, shards);
                    write_decision_trace(path, &meta, &records)?;
                    report
                }
                None => runner.run(&parts.workload, shards),
            };
            if let (Some(handle), Some(path)) = (&metrics, &metrics_out) {
                export_metrics(&report, handle, path)?;
            }
            return Ok(report);
        }

        let inner = config
            .telemetry
            .unwrap_or_else(|| Box::new(infless_telemetry::NullSink));
        // The decisions tap buffers every record alongside whatever the
        // user's sink does with them, so the JSONL artifact can be
        // written in canonical sort order at the end of the run.
        let tap = decisions_out.as_ref().map(|_| {
            (
                DecisionBufferSink::new(),
                Arc::new(Mutex::new(None::<TraceMeta>)),
            )
        });
        let sink: Box<dyn TelemetrySink> = match &tap {
            Some((buf, meta)) => Box::new(DecisionTap {
                inner,
                buf: buf.clone(),
                meta: meta.clone(),
            }),
            None => inner,
        };
        // The flight recorder wraps outermost so its ring sees every
        // span, whatever the user sink keeps.
        let sink: Box<dyn TelemetrySink> = match &flight_out {
            Some(path) => Box::new(FlightRecorder::new(sink, path.clone())),
            None => sink,
        };

        let report = match self.platform {
            PlatformKind::Infless => {
                let mut platform = InflessPlatform::with_chains(
                    parts.cluster,
                    parts.functions,
                    parts.chains,
                    infless_config,
                    self.seed,
                )
                .with_fault_schedule(parts.schedule)
                .with_telemetry(sink);
                if let Some(handle) = &metrics {
                    platform = platform.with_metrics(handle.clone());
                }
                platform.run(&parts.workload)
            }
            PlatformKind::Openfaas => {
                let mut platform = OpenFaasPlus::new(parts.cluster, parts.functions, self.seed)
                    .with_fault_schedule(parts.schedule)
                    .with_telemetry(sink)
                    .with_llm(llm);
                if let Some(handle) = &metrics {
                    platform = platform.with_metrics(handle.clone());
                }
                platform.run(&parts.workload)
            }
            PlatformKind::Batch => {
                let mut platform = BatchPlatform::new(parts.cluster, parts.functions, self.seed)
                    .with_fault_schedule(parts.schedule)
                    .with_telemetry(sink)
                    .with_llm(llm);
                if let Some(handle) = &metrics {
                    platform = platform.with_metrics(handle.clone());
                }
                platform.run(&parts.workload)
            }
        };
        if let (Some((buf, meta)), Some(path)) = (&tap, &decisions_out) {
            let mut records = buf.drain();
            sort_decisions(&mut records);
            let meta = meta
                .lock()
                .expect("trace meta poisoned")
                .take()
                .expect("set_telemetry announces the run before it starts");
            write_decision_trace(path, &meta, &records)?;
        }
        if let (Some(handle), Some(path)) = (&metrics, &metrics_out) {
            export_metrics(&report, handle, path)?;
        }
        Ok(report)
    }

    /// The INFless configuration every scenario run uses (LSTH
    /// keep-alive, the descriptor's residency block unless overridden
    /// by the run config) — shared by the single-core and sharded
    /// paths so their reports stay comparable.
    fn infless_config(
        &self,
        residency_override: Option<ResidencyConfig>,
        llm: LlmConfig,
    ) -> InflessConfig {
        InflessConfig {
            coldstart: ColdStartConfig::Lsth { gamma: 0.5 },
            residency: residency_override.unwrap_or(self.residency),
            llm,
            ..InflessConfig::default()
        }
    }

    /// Builds everything a platform needs from the descriptor: the
    /// function table, the workload, the chains, the cluster spec and
    /// the fault schedule.
    fn build_parts(&self, llm: LlmConfig) -> Result<ScenarioParts, ScenarioError> {
        let functions: Vec<FunctionInfo> = self
            .functions
            .iter()
            .map(|f| {
                let id: ModelId = f.model.parse().expect("validated");
                let slo = SimDuration::from_millis(f.slo_ms);
                let info = match f.max_batch {
                    Some(cap) => FunctionInfo::with_max_batch(id.spec(), slo, cap),
                    None => FunctionInfo::new(id.spec(), slo),
                };
                // Classes attach only when the effective llm block is
                // enabled, so a disabled run is the pre-LLM engine.
                match f.llm_class {
                    Some(kind) if llm.enabled => info.with_llm(kind.to_class()),
                    _ => info,
                }
            })
            .collect();

        let loads: Result<Vec<FunctionLoad>, ScenarioError> = self
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| self.build_load(i, f))
            .collect();
        let workload = Workload::build(&loads?, self.seed);

        let chains: Vec<ChainSpec> = self
            .chains
            .iter()
            .map(|c| {
                let stages = c
                    .stages
                    .iter()
                    .map(|name| {
                        self.functions
                            .iter()
                            .position(|f| &f.name == name)
                            .expect("validated")
                    })
                    .collect();
                ChainSpec::new(
                    c.name.clone(),
                    stages,
                    SimDuration::from_millis(c.e2e_slo_ms),
                )
            })
            .collect();

        let cluster = self.cluster.to_spec();
        // One schedule per scenario: every platform run from the same
        // file faces the identical fault sequence.
        let schedule = match &self.faults {
            Some(plan) => {
                let horizon = workload
                    .end_time()
                    .saturating_since(infless_sim::SimTime::ZERO);
                FaultSchedule::generate(plan, cluster.servers, horizon, self.seed)
            }
            None => FaultSchedule::empty(),
        };
        Ok(ScenarioParts {
            functions,
            workload,
            chains,
            cluster,
            schedule,
        })
    }

    fn build_load(
        &self,
        index: usize,
        f: &FunctionDescriptor,
    ) -> Result<FunctionLoad, ScenarioError> {
        match &f.load {
            LoadDescriptor::Constant { rps, duration_secs } => Ok(FunctionLoad::constant(
                *rps,
                SimDuration::from_secs(*duration_secs),
            )),
            LoadDescriptor::Trace {
                pattern,
                mean_rps,
                duration_secs,
            } => Ok(FunctionLoad::trace(
                parse_pattern(pattern).expect("validated"),
                *mean_rps,
                SimDuration::from_secs(*duration_secs),
                self.seed + index as u64,
            )),
            LoadDescriptor::Csv { path, function } => {
                let file = fs::File::open(path)?;
                let rows = infless_workload::read_csv(file)
                    .map_err(|e| ScenarioError::Invalid(e.to_string()))?;
                let row = rows.iter().find(|r| r.name() == function).ok_or_else(|| {
                    ScenarioError::Invalid(format!("trace {path:?} has no row named {function:?}"))
                })?;
                Ok(row.to_load())
            }
            LoadDescriptor::None => Ok(FunctionLoad::explicit(Vec::new())),
        }
    }
}

fn parse_pattern(name: &str) -> Result<TracePattern, ScenarioError> {
    TracePattern::all()
        .into_iter()
        .find(|p| p.name() == name.to_ascii_lowercase())
        .ok_or_else(|| ScenarioError::Invalid(format!("unknown trace pattern {name:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"{
        "platform": "infless",
        "cluster": { "servers": 2 },
        "functions": [
            { "name": "a", "model": "MobileNet", "slo_ms": 100,
              "load": { "kind": "constant", "rps": 15.0, "duration_secs": 10 } }
        ]
    }"#;

    #[test]
    fn minimal_scenario_parses_and_runs() {
        let s = Scenario::from_json(MINIMAL).unwrap();
        assert_eq!(s.seed, 42, "seed defaults");
        assert_eq!(s.cluster.cores_per_server, 32, "cluster fields default");
        assert!(!s.residency.enabled, "residency defaults to disabled");
        let report = s.execute(RunConfig::new()).unwrap();
        assert_eq!(report.total_completed() + report.total_dropped(), 150);
    }

    #[test]
    fn rejects_unknown_model() {
        let bad = MINIMAL.replace("MobileNet", "AlexNet");
        let err = Scenario::from_json(&bad).unwrap_err();
        assert!(err.to_string().contains("unknown model"));
    }

    #[test]
    fn rejects_unknown_chain_stage() {
        let json = r#"{
            "platform": "infless",
            "functions": [
                { "name": "a", "model": "SSD", "slo_ms": 200,
                  "load": { "kind": "none" } },
                { "name": "b", "model": "ResNet-50", "slo_ms": 200,
                  "load": { "kind": "none" } }
            ],
            "chains": [ { "name": "c", "stages": ["a", "nope"], "e2e_slo_ms": 400 } ]
        }"#;
        let err = Scenario::from_json(json).unwrap_err();
        assert!(err.to_string().contains("unknown function"));
    }

    #[test]
    fn rejects_chains_on_baselines() {
        let json = r#"{
            "platform": "batch",
            "functions": [
                { "name": "a", "model": "SSD", "slo_ms": 200, "load": { "kind": "none" } },
                { "name": "b", "model": "ResNet-50", "slo_ms": 200, "load": { "kind": "none" } }
            ],
            "chains": [ { "name": "c", "stages": ["a", "b"], "e2e_slo_ms": 400 } ]
        }"#;
        let err = Scenario::from_json(json).unwrap_err();
        assert!(err.to_string().contains("INFless platform"));
    }

    #[test]
    fn rejects_unknown_fields() {
        let json = MINIMAL.replace("\"seed\"", "\"sneed\"");
        let with_extra = json.replace(
            "\"platform\": \"infless\",",
            "\"platform\": \"infless\", \"turbo\": true,",
        );
        assert!(Scenario::from_json(&with_extra).is_err());
    }

    #[test]
    fn chain_scenario_runs_end_to_end() {
        let json = r#"{
            "platform": "infless",
            "seed": 3,
            "cluster": { "servers": 4 },
            "functions": [
                { "name": "detect", "model": "SSD", "slo_ms": 200,
                  "load": { "kind": "constant", "rps": 20.0, "duration_secs": 15 } },
                { "name": "classify", "model": "resnet50", "slo_ms": 200, "max_batch": 8,
                  "load": { "kind": "none" } }
            ],
            "chains": [ { "name": "pipeline", "stages": ["detect", "classify"], "e2e_slo_ms": 450 } ]
        }"#;
        let report = Scenario::from_json(json)
            .unwrap()
            .execute(RunConfig::new())
            .unwrap();
        assert_eq!(report.chains.len(), 1);
        assert!(report.chains[0].completed > 100);
        // The max_batch cap holds: classify never batches beyond 8.
        let classify = &report.functions[1];
        assert!(classify.per_batch_completed.keys().all(|b| *b <= 8));
    }

    #[test]
    fn sharded_run_is_shard_count_invariant() {
        let s = Scenario::from_json(MINIMAL).unwrap();
        let r1 = s.execute(RunConfig::new().shards(1)).unwrap();
        let r3 = s.execute(RunConfig::new().shards(3)).unwrap();
        assert_eq!(r1.canonical_json(), r3.canonical_json());
    }

    #[test]
    fn sharded_run_rejects_baselines_and_bad_configs() {
        // Explicit zero shards is a uniform RunConfig error (the CLI
        // surfaces it before execute is ever reached).
        assert!(infless_core::runconfig::RunConfig::validate_explicit_shards(0).is_err());
        // Sharded + telemetry is rejected by RunConfig::validate.
        let s = Scenario::from_json(MINIMAL).unwrap();
        let cfg = RunConfig::new()
            .shards(2)
            .telemetry(Box::new(infless_telemetry::NullSink));
        assert!(s.execute(cfg).is_err());
        // Only the INFless engine is sharded.
        let batch = MINIMAL.replace("\"infless\"", "\"batch\"");
        let s = Scenario::from_json(&batch).unwrap();
        assert!(s.execute(RunConfig::new().shards(2)).is_err());
    }

    #[test]
    fn residency_block_round_trips_and_rejects_unknown_fields() {
        let json = MINIMAL.replace(
            "\"platform\": \"infless\",",
            "\"platform\": \"infless\", \"residency\": { \"enabled\": true },",
        );
        let s = Scenario::from_json(&json).unwrap();
        assert!(s.residency.enabled);
        assert_eq!(
            s.residency.host_cache_mb,
            infless_core::residency::DEFAULT_HOST_CACHE_MB,
            "omitted knobs take their defaults"
        );
        let report = s.execute(RunConfig::new()).unwrap();
        assert_eq!(report.total_completed() + report.total_dropped(), 150);

        let bad = MINIMAL.replace(
            "\"platform\": \"infless\",",
            "\"platform\": \"infless\", \"residency\": { \"enabld\": true },",
        );
        assert!(Scenario::from_json(&bad).is_err());
    }

    const LLM_MINIMAL: &str = r#"{
        "platform": "infless",
        "cluster": { "servers": 2 },
        "llm": { "enabled": true, "batching": "continuous" },
        "functions": [
            { "name": "chat", "model": "Bert-v1", "slo_ms": 10000, "llm_class": "chat",
              "load": { "kind": "constant", "rps": 5.0, "duration_secs": 10 } }
        ]
    }"#;

    #[test]
    fn llm_block_round_trips_and_rejects_unknown_fields() {
        let s = Scenario::from_json(LLM_MINIMAL).unwrap();
        assert!(s.llm.enabled);
        assert_eq!(s.llm.batching, infless_llm::LlmBatching::Continuous);
        assert_eq!(s.functions[0].llm_class, Some(LlmClassKind::Chat));
        // Omitted block is the disabled default.
        let plain = Scenario::from_json(MINIMAL).unwrap();
        assert!(!plain.llm.enabled);
        assert_eq!(plain.llm.batching, infless_llm::LlmBatching::Static);
        // Unknown fields inside the block are rejected.
        let bad = LLM_MINIMAL.replace("\"enabled\"", "\"enbaled\"");
        assert!(Scenario::from_json(&bad).is_err());
        // Unknown class names are rejected.
        let bad = LLM_MINIMAL.replace("\"chat\",", "\"poetry\",");
        assert!(Scenario::from_json(&bad).is_err());
    }

    #[test]
    fn llm_class_requires_enabled_block() {
        let bad = LLM_MINIMAL.replace(
            "\"llm\": { \"enabled\": true, \"batching\": \"continuous\" },",
            "",
        );
        let err = Scenario::from_json(&bad).unwrap_err();
        assert!(err.to_string().contains("llm block is disabled"), "{err}");
    }

    #[test]
    fn llm_scenario_reports_token_metrics() {
        let s = Scenario::from_json(LLM_MINIMAL).unwrap();
        let report = s.execute(RunConfig::new()).unwrap();
        assert!(report.total_completed() > 0);
        let llm = report.functions[0]
            .llm
            .as_ref()
            .expect("LLM stats on an autoregressive function");
        assert_eq!(llm.ttft_ms.count(), report.total_completed());
        assert!(llm.decoded_tokens > 0);
        assert_eq!(
            report.kv_allocated_bytes,
            report.kv_freed_bytes + report.kv_resident_bytes
        );
    }

    #[test]
    fn csv_load_replays_a_trace_row() {
        let dir = std::env::temp_dir().join("infless-descriptor-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        let rows = vec![infless_workload::TraceRow::new("hot", vec![600; 5])];
        let mut buf = Vec::new();
        infless_workload::write_csv(&rows, &mut buf).unwrap();
        std::fs::write(&path, buf).unwrap();

        let json = format!(
            r#"{{
                "platform": "infless",
                "cluster": {{ "servers": 2 }},
                "functions": [
                    {{ "name": "f", "model": "MNIST", "slo_ms": 50,
                       "load": {{ "kind": "csv", "path": {path:?}, "function": "hot" }} }}
                ]
            }}"#
        );
        let report = Scenario::from_json(&json)
            .unwrap()
            .execute(RunConfig::new())
            .unwrap();
        // ~10 rps over 5 minutes.
        let total = report.total_completed() + report.total_dropped();
        assert!((2000..4500).contains(&(total as usize)), "total {total}");
    }
}
