//! # infless
//!
//! Facade crate for the INFless (ASPLOS'22) reproduction. Re-exports the
//! workspace crates under one roof; see the README for a tour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod descriptor;

pub use infless_baselines as baselines;
pub use infless_cluster as cluster;
pub use infless_core as core;
pub use infless_core::{ResidencyConfig, RunConfig, RunConfigError};
pub use infless_models as models;
pub use infless_sim as sim;
pub use infless_telemetry as telemetry;
pub use infless_workload as workload;
