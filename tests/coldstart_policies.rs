//! Cold-start policy integration: LSTH against HHP and fixed windows on
//! the workload class it was designed for (timer-like and sporadic
//! functions) — the Fig. 16 claims at test scale.

use infless::cluster::ClusterSpec;
use infless::core::engine::FunctionInfo;
use infless::core::platform::{ColdStartConfig, InflessConfig, InflessPlatform};
use infless::core::RunReport;
use infless::models::ModelId;
use infless::sim::SimDuration;
use infless::workload::{FunctionLoad, RateSeries, TracePattern, Workload};

/// A 6-hour mixed workload: a timer-like function firing in short
/// windows every ~50 minutes, plus a sporadic and a bursty function.
fn mixed_workload() -> (Vec<FunctionInfo>, Workload) {
    let duration = SimDuration::from_hours(6);
    let slo = SimDuration::from_millis(200);
    let functions = vec![
        FunctionInfo::new(ModelId::Ssd.spec(), slo),
        FunctionInfo::new(ModelId::TextCnn69.spec(), slo),
        FunctionInfo::new(ModelId::MobileNet.spec(), slo),
    ];
    let mins = (duration.as_secs_f64() / 60.0) as usize;
    let timer: Vec<f64> = (0..mins)
        .map(|i| if i % 50 < 2 { 10.0 } else { 0.0 })
        .collect();
    let loads = vec![
        FunctionLoad::poisson(RateSeries::new(SimDuration::from_mins(1), timer)),
        FunctionLoad::trace(TracePattern::Sporadic, 2.0, duration, 301),
        FunctionLoad::trace(TracePattern::Bursty, 3.0, duration, 302),
    ];
    (functions, Workload::build(&loads, 300))
}

fn run(coldstart: ColdStartConfig) -> RunReport {
    let (functions, workload) = mixed_workload();
    let config = InflessConfig {
        coldstart,
        ..InflessConfig::default()
    };
    InflessPlatform::new(ClusterSpec::testbed(), functions, config, 300).run(&workload)
}

#[test]
fn lsth_no_worse_than_hhp_on_both_axes() {
    let lsth = run(ColdStartConfig::Lsth { gamma: 0.5 });
    let hhp = run(ColdStartConfig::Hhp);
    // Cold-launch counts on a single-seed stochastic workload carry ±a
    // few launches of noise (the sporadic/bursty streams land near the
    // window edges differently per policy). The Fig. 16 claim is about
    // the trend, so allow that noise band rather than a strict ≤ —
    // LSTH landing at e.g. 15 vs HHP's 14 is a tie, not a regression.
    let slack = (hhp.cold_launches / 10).max(2);
    assert!(
        lsth.cold_launches <= hhp.cold_launches + slack,
        "LSTH {} cold launches vs HHP {} (+{} slack)",
        lsth.cold_launches,
        hhp.cold_launches,
        slack
    );
    assert!(
        lsth.weighted_idle_seconds <= hhp.weighted_idle_seconds * 1.05,
        "LSTH idle waste {} vs HHP {}",
        lsth.weighted_idle_seconds,
        hhp.weighted_idle_seconds
    );
}

#[test]
fn histogram_policies_beat_fixed_on_cold_starts() {
    let lsth = run(ColdStartConfig::Lsth { gamma: 0.5 });
    let fixed = run(ColdStartConfig::Fixed(SimDuration::from_secs(300)));
    // A 300 s window cannot bridge ~48-minute timer gaps; the histogram
    // policy pre-warms across them.
    assert!(
        lsth.cold_launches < fixed.cold_launches,
        "LSTH {} vs fixed {}",
        lsth.cold_launches,
        fixed.cold_launches
    );
}

#[test]
fn gamma_sweep_stays_functional() {
    for gamma in [0.3, 0.5, 0.7] {
        let report = run(ColdStartConfig::Lsth { gamma });
        let total = report.total_completed() + report.total_dropped();
        let served = report.total_completed() as f64 / total as f64;
        assert!(
            served > 0.95,
            "γ={gamma}: served only {:.1}%",
            served * 100.0
        );
    }
}

#[test]
fn cold_requests_wait_seconds_not_minutes() {
    let report = run(ColdStartConfig::Fixed(SimDuration::from_secs(60)));
    for f in &report.functions {
        if f.cold_requests == 0 {
            continue;
        }
        let cold_mean = f.cold_ms.mean();
        assert!(
            cold_mean < 10_000.0,
            "{}: mean cold wait {cold_mean}ms",
            f.name
        );
    }
}
