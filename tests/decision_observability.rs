//! Decision-observability invariants: the decision trace must be
//! byte-identical across shard counts, none of the observability
//! channels may perturb the run, the latency decomposition must
//! partition end-to-end latency exactly, and the flight recorder must
//! dump on fault bursts.

use infless::descriptor::Scenario;
use infless::telemetry::{DecisionBufferSink, DecisionRecord};
use infless::RunConfig;
use infless_cluster::ClusterSpec;
use infless_core::platform::{InflessConfig, InflessPlatform};
use infless_core::sharded::ShardedInfless;
use infless_faults::{FaultPlan, FaultSchedule};
use infless_models::ModelId;
use infless_sim::SimDuration;
use infless_workload::{FunctionLoad, Workload};
use proptest::prelude::*;

fn shipped_scenario_json() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join("failure_sweep.json");
    std::fs::read_to_string(path).expect("shipped scenario readable")
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("infless-obs-{name}-{}", std::process::id()))
}

/// The merged decision trace of a sharded run is byte-identical for
/// every shard count, and so is the canonical report.
#[test]
fn decision_trace_is_byte_identical_across_shard_counts() {
    let json = shipped_scenario_json();
    let p1 = temp_path("ds1.jsonl");
    let p4 = temp_path("ds4.jsonl");
    let r1 = Scenario::from_json(&json)
        .unwrap()
        .execute(RunConfig::new().shards(1).decisions_out(&p1))
        .unwrap();
    let r4 = Scenario::from_json(&json)
        .unwrap()
        .execute(RunConfig::new().shards(4).decisions_out(&p4))
        .unwrap();
    assert_eq!(r1.canonical_json(), r4.canonical_json());
    let t1 = std::fs::read(&p1).unwrap();
    let t4 = std::fs::read(&p4).unwrap();
    assert!(!t1.is_empty(), "decision trace came out empty");
    assert_eq!(
        t1, t4,
        "decision traces diverged between 1 and 4 shards — a record \
         carries a shard-local quantity (raw instance/request id?)"
    );
    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p4).ok();
}

/// Decision tracing, metrics export and the flight recorder leave the
/// canonical report byte-identical to a bare run, single-core and
/// sharded.
#[test]
fn observability_outputs_do_not_perturb_the_run() {
    let json = shipped_scenario_json();
    let bare = Scenario::from_json(&json)
        .unwrap()
        .execute(RunConfig::new())
        .unwrap();
    let dp = temp_path("obs-d.jsonl");
    let mp = temp_path("obs-m.prom");
    let fp = temp_path("obs-f.jsonl");
    let full = Scenario::from_json(&json)
        .unwrap()
        .execute(
            RunConfig::new()
                .decisions_out(&dp)
                .metrics_out(&mp)
                .flight_out(&fp),
        )
        .unwrap();
    assert_eq!(
        bare.canonical_json(),
        full.canonical_json(),
        "observability outputs perturbed the single-core run"
    );
    let sharded_bare = Scenario::from_json(&json)
        .unwrap()
        .execute(RunConfig::new().shards(2))
        .unwrap();
    let sdp = temp_path("obs-sd.jsonl");
    let smp = temp_path("obs-sm.prom");
    let sharded_full = Scenario::from_json(&json)
        .unwrap()
        .execute(
            RunConfig::new()
                .shards(2)
                .decisions_out(&sdp)
                .metrics_out(&smp),
        )
        .unwrap();
    assert_eq!(
        sharded_bare.canonical_json(),
        sharded_full.canonical_json(),
        "observability outputs perturbed the sharded run"
    );
    for p in [&dp, &mp, &fp, &sdp, &smp] {
        std::fs::remove_file(p).ok();
    }
}

/// A fault burst flushes the flight-recorder ring: the dump file opens
/// with a burst header followed by the buffered spans, and arming the
/// recorder does not perturb the run.
#[test]
fn flight_recorder_dumps_on_fault_burst() {
    // Crank the kill rate far past the burst threshold (8 fault-tagged
    // spans within 5 simulated seconds).
    let json = shipped_scenario_json()
        .replace(
            "\"instance_kills_per_hour\": 90.0",
            "\"instance_kills_per_hour\": 20000.0",
        )
        .replace(
            "\"server_crashes_per_hour\": 30.0",
            "\"server_crashes_per_hour\": 600.0",
        );
    let bare = Scenario::from_json(&json)
        .unwrap()
        .execute(RunConfig::new())
        .unwrap();
    let fp = temp_path("burst.jsonl");
    std::fs::remove_file(&fp).ok();
    let armed = Scenario::from_json(&json)
        .unwrap()
        .execute(RunConfig::new().flight_out(&fp))
        .unwrap();
    assert_eq!(bare.canonical_json(), armed.canonical_json());
    let text = std::fs::read_to_string(&fp).expect("fault burst produced no dump");
    let first = text.lines().next().unwrap();
    assert!(
        first.starts_with("{\"burst\":"),
        "dump must open with a burst header, got {first}"
    );
    assert!(
        text.lines().count() > 1,
        "burst header with no spans behind it"
    );
    std::fs::remove_file(&fp).ok();
}

/// The flight recorder is span-channel observability and therefore
/// rejected on sharded runs, like a telemetry sink.
#[test]
fn sharded_flight_recorder_is_rejected() {
    let json = shipped_scenario_json();
    let err = Scenario::from_json(&json)
        .unwrap()
        .execute(RunConfig::new().shards(2).flight_out(temp_path("no.jsonl")))
        .unwrap_err();
    assert!(
        err.to_string().contains("single-core"),
        "unexpected error: {err}"
    );
}

fn check_breakdowns(records: &[DecisionRecord], label: &str) -> usize {
    let mut seen = 0;
    for rec in records {
        let DecisionRecord::Breakdown(b) = rec else {
            continue;
        };
        seen += 1;
        let sum = b.queue_ms + b.batch_wait_ms + b.startup_ms + b.exec_ms + b.interference_ms;
        assert!(
            (sum - b.total_ms).abs() <= 1e-6 * b.total_ms.max(1.0),
            "{label}: decomposition does not partition the latency: \
             {sum} != {} for fn {} req {} at t={}",
            b.total_ms,
            b.function,
            b.request,
            b.t_s
        );
        for (name, v) in [
            ("queue", b.queue_ms),
            ("batch_wait", b.batch_wait_ms),
            ("startup", b.startup_ms),
            ("exec", b.exec_ms),
            ("interference", b.interference_ms),
        ] {
            assert!(v >= 0.0, "{label}: negative {name} component: {v}");
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The five decomposition components partition every completed
    /// request's end-to-end latency, for arbitrary load levels, fault
    /// intensities and seeds, on the single-core loop and at 1 and 4
    /// shards.
    #[test]
    fn prop_breakdown_components_sum_to_total(
        seed in 0u64..1000,
        rps in 10.0f64..60.0,
        intensity in 0.0f64..4.0,
    ) {
        let cluster = ClusterSpec {
            servers: 3,
            cores_per_server: 16,
            gpus_per_server: 1,
            mem_per_server_mb: 64.0 * 1024.0,
            gpu_mem_per_device_mb: 0.0,
        };
        let functions = vec![
            infless_core::engine::FunctionInfo::new(
                ModelId::MobileNet.spec(),
                SimDuration::from_millis(150),
            ),
            infless_core::engine::FunctionInfo::new(
                ModelId::Mnist.spec(),
                SimDuration::from_millis(60),
            ),
        ];
        let loads: Vec<FunctionLoad> = (0..functions.len())
            .map(|_| FunctionLoad::constant(rps, SimDuration::from_secs(20)))
            .collect();
        let workload = Workload::build(&loads, seed);
        let schedule = FaultSchedule::generate(
            &FaultPlan::sweep(intensity),
            cluster.servers,
            SimDuration::from_secs(20),
            seed,
        );
        // Single-core loop: tap the decisions channel through a buffer
        // sink.
        let tap = DecisionBufferSink::new();
        let report = InflessPlatform::new(
            cluster,
            functions.clone(),
            InflessConfig::default(),
            seed,
        )
        .with_fault_schedule(schedule.clone())
        .with_telemetry(Box::new(tap.clone()))
        .run(&workload);
        let single = tap.drain();
        let seen = check_breakdowns(&single, "single-core");
        prop_assert_eq!(
            seen as u64,
            report.total_completed(),
            "one breakdown per completed request"
        );
        // Sharded driver, 1 and 4 shards: the same invariant must hold
        // on the merged traces.
        let runner = ShardedInfless::new(
            cluster,
            functions,
            InflessConfig::default(),
            seed,
        )
        .with_fault_schedule(schedule);
        let (r1, d1) = runner.run_with_decisions(&workload, 1);
        let (r4, d4) = runner.run_with_decisions(&workload, 4);
        prop_assert_eq!(r1.canonical_json(), r4.canonical_json());
        check_breakdowns(&d1, "1 shard");
        check_breakdowns(&d4, "4 shards");
        prop_assert_eq!(d1.len(), d4.len());
    }
}
