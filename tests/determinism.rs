//! Reproducibility: identical seeds must give bit-identical results on
//! every platform — the property that makes A/B comparisons on the same
//! workload meaningful (and the paper's simulator methodology sound).

use infless::baselines::{BatchPlatform, OpenFaasPlus};
use infless::cluster::ClusterSpec;
use infless::core::apps::Application;
use infless::core::platform::{InflessConfig, InflessPlatform};
use infless::sim::SimDuration;
use infless::workload::{FunctionLoad, TracePattern, Workload};

fn workload(seed: u64) -> (Application, Workload) {
    let app = Application::qa_robot();
    let loads: Vec<FunctionLoad> = app
        .functions()
        .iter()
        .enumerate()
        .map(|(i, _)| {
            FunctionLoad::trace(
                TracePattern::Bursty,
                40.0,
                SimDuration::from_secs(45),
                seed + i as u64,
            )
        })
        .collect();
    let w = Workload::build(&loads, seed);
    (app, w)
}

/// A digest of everything observable about a run.
fn digest(report: &infless::core::RunReport) -> (u64, u64, u64, u64, String) {
    let lat: String = report
        .functions
        .iter()
        .map(|f| format!("{}:{:.6};", f.name, f.queue_ms.mean() + f.exec_ms.mean()))
        .collect();
    (
        report.total_completed(),
        report.total_dropped(),
        report.launches,
        report.cold_launches,
        lat,
    )
}

#[test]
fn workload_generation_is_deterministic() {
    let (_, a) = workload(11);
    let (_, b) = workload(11);
    assert_eq!(a, b);
    let (_, c) = workload(12);
    assert_ne!(a, c);
}

#[test]
fn infless_runs_are_identical_per_seed() {
    let (app, w) = workload(21);
    let run = || {
        InflessPlatform::new(
            ClusterSpec::testbed(),
            app.functions().to_vec(),
            InflessConfig::default(),
            21,
        )
        .run(&w)
    };
    assert_eq!(digest(&run()), digest(&run()));
}

#[test]
fn openfaas_runs_are_identical_per_seed() {
    let (app, w) = workload(22);
    let run = || OpenFaasPlus::new(ClusterSpec::testbed(), app.functions().to_vec(), 22).run(&w);
    assert_eq!(digest(&run()), digest(&run()));
}

#[test]
fn batch_runs_are_identical_per_seed() {
    let (app, w) = workload(23);
    let run = || BatchPlatform::new(ClusterSpec::testbed(), app.functions().to_vec(), 23).run(&w);
    assert_eq!(digest(&run()), digest(&run()));
}

#[test]
fn different_seeds_change_noise_not_magnitudes() {
    let (app, w) = workload(31);
    let r1 = InflessPlatform::new(
        ClusterSpec::testbed(),
        app.functions().to_vec(),
        InflessConfig::default(),
        31,
    )
    .run(&w);
    let r2 = InflessPlatform::new(
        ClusterSpec::testbed(),
        app.functions().to_vec(),
        InflessConfig::default(),
        32,
    )
    .run(&w);
    // Same workload, different execution noise: totals stay close.
    let a = r1.total_completed() as f64;
    let b = r2.total_completed() as f64;
    assert!((a - b).abs() / a < 0.02, "{a} vs {b}");
}
