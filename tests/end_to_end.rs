//! End-to-end comparison invariants: the qualitative claims of §5.2
//! must hold on a full platform run — INFless beats both baselines on
//! throughput per unit of resource while keeping SLO violations low.

use infless::baselines::{BatchPlatform, OpenFaasPlus};
use infless::cluster::ClusterSpec;
use infless::core::apps::Application;
use infless::core::platform::{InflessConfig, InflessPlatform};
use infless::core::RunReport;
use infless::sim::SimDuration;
use infless::workload::{FunctionLoad, Workload};

fn workload(app: &Application, rps: f64, secs: u64, seed: u64) -> Workload {
    let loads: Vec<FunctionLoad> = app
        .functions()
        .iter()
        .map(|_| FunctionLoad::constant(rps, SimDuration::from_secs(secs)))
        .collect();
    Workload::build(&loads, seed)
}

fn run_all(app: &Application, w: &Workload, seed: u64) -> [RunReport; 3] {
    let cluster = ClusterSpec::testbed();
    [
        OpenFaasPlus::new(cluster, app.functions().to_vec(), seed).run(w),
        BatchPlatform::new(cluster, app.functions().to_vec(), seed).run(w),
        InflessPlatform::new(
            cluster,
            app.functions().to_vec(),
            InflessConfig::default(),
            seed,
        )
        .run(w),
    ]
}

#[test]
fn infless_wins_throughput_per_resource_on_osvt() {
    let app = Application::osvt();
    let w = workload(&app, 60.0, 60, 1);
    let [openfaas, batch, infless] = run_all(&app, &w, 1);
    let tpr = |r: &RunReport| r.throughput_per_resource();
    assert!(
        tpr(&infless) > 1.5 * tpr(&batch),
        "INFless {:.3} vs BATCH {:.3}",
        tpr(&infless),
        tpr(&batch)
    );
    assert!(
        tpr(&infless) > 2.0 * tpr(&openfaas),
        "INFless {:.3} vs OpenFaaS+ {:.3}",
        tpr(&infless),
        tpr(&openfaas)
    );
    // And BATCH in turn beats one-to-one OpenFaaS+ (Observation #4/#5).
    assert!(tpr(&batch) > tpr(&openfaas));
}

#[test]
fn all_systems_serve_moderate_load() {
    let app = Application::qa_robot();
    let w = workload(&app, 30.0, 45, 2);
    for report in run_all(&app, &w, 2) {
        let total = report.total_completed() + report.total_dropped();
        assert_eq!(
            total as usize,
            w.len(),
            "{}: lost requests",
            report.platform
        );
        let served = report.total_completed() as f64 / total as f64;
        assert!(
            served > 0.95,
            "{} only served {:.1}%",
            report.platform,
            served * 100.0
        );
    }
}

#[test]
fn infless_violation_rate_is_low() {
    let app = Application::osvt();
    let w = workload(&app, 50.0, 60, 3);
    let [_, _, infless] = run_all(&app, &w, 3);
    assert!(
        infless.violation_rate() < 0.05,
        "INFless violation rate {:.2}%",
        infless.violation_rate() * 100.0
    );
}

#[test]
fn infless_cost_per_request_is_cheapest() {
    use infless::baselines::CostModel;
    let app = Application::osvt();
    let w = workload(&app, 60.0, 60, 4);
    let [openfaas, batch, infless] = run_all(&app, &w, 4);
    let cost = CostModel::default();
    let c_open = cost.summarize(&openfaas).cost_per_request;
    let c_batch = cost.summarize(&batch).cost_per_request;
    let c_inf = cost.summarize(&infless).cost_per_request;
    assert!(c_inf < c_batch, "INFless {c_inf} !< BATCH {c_batch}");
    assert!(c_batch < c_open, "BATCH {c_batch} !< OpenFaaS+ {c_open}");
}

#[test]
fn infless_uses_non_uniform_configs_batch_does_not() {
    let app = Application::osvt();
    let w = workload(&app, 100.0, 45, 5);
    let [_, batch, infless] = run_all(&app, &w, 5);
    // BATCH: at most one configuration per function.
    let mut batch_cfgs_per_fn = std::collections::HashMap::new();
    for (f, cfg) in batch.config_launches.keys() {
        batch_cfgs_per_fn
            .entry(*f)
            .or_insert_with(std::collections::HashSet::new)
            .insert(*cfg);
    }
    for (f, cfgs) in &batch_cfgs_per_fn {
        assert_eq!(cfgs.len(), 1, "BATCH fn {f} used {} configs", cfgs.len());
    }
    // INFless: across the app, more distinct configurations than
    // functions (non-uniform scaling, Fig. 13c).
    let infless_distinct: std::collections::HashSet<_> = infless.config_launches.keys().collect();
    assert!(
        infless_distinct.len() > app.functions().len(),
        "INFless used only {} distinct (fn, config) pairs",
        infless_distinct.len()
    );
}

#[test]
fn engine_accounts_every_request_exactly_once() {
    let app = Application::combined();
    let w = workload(&app, 25.0, 40, 6);
    for report in run_all(&app, &w, 6) {
        let accounted: u64 = report
            .functions
            .iter()
            .map(|f| f.completed + f.dropped)
            .sum();
        assert_eq!(
            accounted as usize,
            w.len(),
            "{}: {} accounted vs {} offered",
            report.platform,
            accounted,
            w.len()
        );
        for f in &report.functions {
            assert_eq!(
                f.latency_ms.len() as u64,
                f.completed,
                "{}: latency samples must match completions",
                f.name
            );
        }
    }
}
