//! End-to-end checks of the fault-injection subsystem: the shipped
//! failure scenario must run on every platform, faults must actually
//! fire, and no request may be lost or double-counted across eviction,
//! retry and shedding.

use infless::descriptor::Scenario;
use infless::RunConfig;
use infless_cluster::ClusterSpec;
use infless_core::metrics::RunReport;
use infless_core::platform::{InflessConfig, InflessPlatform};
use infless_faults::{FaultPlan, FaultSchedule};
use infless_models::ModelId;
use infless_sim::SimDuration;
use infless_workload::{FunctionLoad, Workload};
use proptest::prelude::*;

fn check_failure_invariants(report: &RunReport, offered: u64, label: &str) {
    let f = &report.failures;
    assert_eq!(
        f.requests_displaced,
        f.requests_retried + f.requests_shed,
        "{label}: displaced requests leaked: {f:?}"
    );
    assert_eq!(
        report.total_completed() + report.total_dropped(),
        offered,
        "{label}: conservation broken (completed {} + dropped {} != offered {offered})",
        report.total_completed(),
        report.total_dropped(),
    );
}

/// The shipped `scenarios/failure_sweep.json` runs end to end on every
/// platform with faults firing, and the accounting invariants hold.
#[test]
fn shipped_failure_scenario_runs_with_faults_firing() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join("failure_sweep.json");
    Scenario::from_file(&path).expect("shipped scenario parses");
    let json = std::fs::read_to_string(&path).unwrap();
    for platform in ["infless", "openfaas", "batch"] {
        let json = json.replace(
            "\"platform\": \"infless\"",
            &format!("\"platform\": \"{platform}\""),
        );
        let scenario = Scenario::from_json(&json).expect("valid");
        let report = scenario.execute(RunConfig::new()).expect("runs");
        let total = report.total_completed() + report.total_dropped();
        assert!(
            report.failures.any(),
            "{platform}: the failure sweep injected nothing"
        );
        assert!(
            report.failures.server_crashes > 0,
            "{platform}: no server crash fired: {:?}",
            report.failures
        );
        check_failure_invariants(&report, total, platform);
        assert!(
            report.total_completed() > 0,
            "{platform}: nothing completed under faults"
        );
    }
}

/// Reference-seed smoke of the fault report surface: recovery metrics
/// are populated when capacity is lost.
#[test]
fn recovery_metrics_are_reported() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join("failure_sweep.json");
    let report = Scenario::from_file(&path)
        .unwrap()
        .execute(RunConfig::new())
        .unwrap();
    let f = &report.failures;
    assert!(f.server_crashes > 0 || f.instances_killed > 0);
    if f.server_recoveries > 0 {
        assert!(f.server_recoveries <= f.server_crashes);
    }
    if f.requests_displaced > 0 {
        // Some displaced work must have been re-dispatched or shed.
        assert!(f.requests_retried + f.requests_shed > 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Conservation across eviction and re-placement: for arbitrary
    /// load levels, fault intensities and seeds, every offered request
    /// ends exactly once (completed or dropped; shed counts as
    /// dropped), and every displaced request is either retried or shed.
    #[test]
    fn prop_workload_conservation_under_faults(
        seed in 0u64..1000,
        rps in 10.0f64..60.0,
        intensity in 0.5f64..4.0,
    ) {
        let cluster = ClusterSpec {
            servers: 3,
            cores_per_server: 16,
            gpus_per_server: 1,
            mem_per_server_mb: 64.0 * 1024.0,
            gpu_mem_per_device_mb: 0.0,
        };
        let functions = vec![
            infless_core::engine::FunctionInfo::new(
                ModelId::MobileNet.spec(),
                SimDuration::from_millis(150),
            ),
            infless_core::engine::FunctionInfo::new(
                ModelId::Mnist.spec(),
                SimDuration::from_millis(60),
            ),
        ];
        let loads: Vec<FunctionLoad> = (0..functions.len())
            .map(|_| FunctionLoad::constant(rps, SimDuration::from_secs(20)))
            .collect();
        let workload = Workload::build(&loads, seed);
        let offered = workload.len() as u64;
        let schedule = FaultSchedule::generate(
            &FaultPlan::sweep(intensity),
            cluster.servers,
            SimDuration::from_secs(20),
            seed,
        );
        let report = InflessPlatform::new(
            cluster,
            functions,
            InflessConfig::default(),
            seed,
        )
        .with_fault_schedule(schedule)
        .run(&workload);
        let f = &report.failures;
        prop_assert_eq!(
            f.requests_displaced,
            f.requests_retried + f.requests_shed,
            "displaced leaked: {:?}", f
        );
        prop_assert_eq!(
            report.total_completed() + report.total_dropped(),
            offered,
            "conservation broken: completed {} + dropped {} != offered {}; {:?}",
            report.total_completed(),
            report.total_dropped(),
            offered,
            f
        );
    }
}
