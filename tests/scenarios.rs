//! The shipped scenario files must stay valid, and the descriptor
//! pipeline must produce working runs across platforms.

use infless::descriptor::{PlatformKind, Scenario};
use infless::RunConfig;

#[test]
fn shipped_scenarios_parse_and_validate() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios");
    let mut count = 0;
    for entry in std::fs::read_dir(dir).expect("scenarios/ exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_some_and(|e| e == "json") {
            Scenario::from_file(&path).unwrap_or_else(|e| panic!("{path:?} failed to parse: {e}"));
            count += 1;
        }
    }
    assert!(
        count >= 3,
        "expected the shipped scenario set, found {count}"
    );
}

#[test]
fn same_descriptor_runs_on_every_platform() {
    let template = |platform: &str| {
        format!(
            r#"{{
                "platform": "{platform}",
                "seed": 5,
                "cluster": {{ "servers": 2 }},
                "functions": [
                    {{ "name": "f", "model": "MobileNet", "slo_ms": 200,
                       "load": {{ "kind": "constant", "rps": 25.0, "duration_secs": 20 }} }}
                ]
            }}"#
        )
    };
    for platform in ["infless", "openfaas", "batch"] {
        let scenario = Scenario::from_json(&template(platform)).expect("valid");
        let report = scenario.execute(RunConfig::new()).expect("runs");
        let total = report.total_completed() + report.total_dropped();
        assert_eq!(total, 500, "{platform}: accounted {total}");
        assert!(
            report.total_completed() > 450,
            "{platform}: completed only {}",
            report.total_completed()
        );
    }
}

#[test]
fn seed_override_changes_nothing_but_noise() {
    let json = r#"{
        "platform": "infless",
        "cluster": { "servers": 2 },
        "functions": [
            { "name": "f", "model": "TextCNN-69", "slo_ms": 100,
              "load": { "kind": "trace", "pattern": "periodic", "mean_rps": 30.0, "duration_secs": 60 } }
        ]
    }"#;
    let mut a = Scenario::from_json(json).expect("valid");
    let mut b = Scenario::from_json(json).expect("valid");
    a.seed = 1;
    b.seed = 1;
    let ra = a.execute(RunConfig::new()).expect("runs");
    let rb = b.execute(RunConfig::new()).expect("runs");
    assert_eq!(ra.total_completed(), rb.total_completed());
    assert_eq!(ra.launches, rb.launches);
    assert_eq!(PlatformKind::Infless, PlatformKind::Infless);
}
