//! SLO guarantees and auto-scaling behaviour across trace patterns —
//! the integration-level counterpart of Figs. 14 and 15.

use infless::cluster::ClusterSpec;
use infless::core::apps::Application;
use infless::core::engine::FunctionInfo;
use infless::core::platform::{InflessConfig, InflessPlatform};
use infless::models::ModelId;
use infless::sim::SimDuration;
use infless::workload::{FunctionLoad, TracePattern, Workload};

fn run_pattern(pattern: TracePattern, mean_rps: f64, mins: u64) -> infless::core::RunReport {
    let app = Application::osvt();
    let duration = SimDuration::from_mins(mins);
    let loads: Vec<FunctionLoad> = app
        .functions()
        .iter()
        .enumerate()
        .map(|(i, _)| FunctionLoad::trace(pattern, mean_rps, duration, 70 + i as u64))
        .collect();
    let workload = Workload::build(&loads, 71);
    InflessPlatform::new(
        ClusterSpec::testbed(),
        app.functions().to_vec(),
        InflessConfig::default(),
        71,
    )
    .run(&workload)
}

#[test]
fn slo_holds_across_trace_patterns() {
    // Fig. 15a: INFless keeps violations ≤ ~3% on every pattern; allow
    // headroom for the tougher patterns at this small scale.
    for pattern in TracePattern::evaluation_set() {
        let report = run_pattern(pattern, 40.0, 8);
        assert!(
            report.violation_rate() < 0.08,
            "{pattern}: violation rate {:.2}%",
            report.violation_rate() * 100.0
        );
    }
}

#[test]
fn queueing_time_stays_within_budget() {
    // Fig. 15b: the dispatcher regulates batch queueing to roughly the
    // execution-time scale; queueing must never dominate the SLO.
    let report = run_pattern(TracePattern::Periodic, 60.0, 8);
    for f in &report.functions {
        if f.completed == 0 {
            continue;
        }
        let queue = f.queue_ms.mean();
        assert!(
            queue < f.slo.as_millis_f64() * 0.75,
            "{}: mean queue {queue}ms vs SLO {}",
            f.name,
            f.slo
        );
    }
}

#[test]
fn provisioning_tracks_periodic_load() {
    // Load high enough that the peak needs several instances per
    // function — otherwise one large-batch instance covers the whole
    // swing and there is nothing to scale in.
    let report = run_pattern(TracePattern::Periodic, 300.0, 12);
    let peak = report
        .provisioning
        .iter()
        .map(|(_, u)| *u)
        .fold(0.0f64, f64::max);
    // After the peak, provisioning must come down (Fig. 14 bottom).
    let mut after_peak = false;
    let mut min_after = f64::MAX;
    for (_, u) in &report.provisioning {
        if *u >= peak * 0.999 {
            after_peak = true;
        } else if after_peak {
            min_after = min_after.min(*u);
        }
    }
    assert!(
        min_after < peak * 0.7,
        "provisioning never scaled in: peak {peak}, min after {min_after}"
    );
    assert!(report.retirements > 0);
}

#[test]
fn bursty_load_triggers_scale_out_and_in() {
    let report = run_pattern(TracePattern::Bursty, 50.0, 10);
    assert!(report.launches > 3, "launches {}", report.launches);
    let served = report.total_completed() as f64
        / (report.total_completed() + report.total_dropped()) as f64;
    assert!(served > 0.95, "served only {:.1}%", served * 100.0);
}

#[test]
fn large_model_tight_slo_is_detected_as_infeasible_or_served() {
    // BERT under a 150 ms SLO can only run on generous GPU slices; the
    // platform must either serve within SLO or drop — never hang.
    let functions = vec![FunctionInfo::new(
        ModelId::BertV1.spec(),
        SimDuration::from_millis(150),
    )];
    let loads = vec![FunctionLoad::constant(10.0, SimDuration::from_secs(30))];
    let workload = Workload::build(&loads, 80);
    let report = InflessPlatform::new(
        ClusterSpec::testbed(),
        functions,
        InflessConfig::default(),
        80,
    )
    .run(&workload);
    let total = report.total_completed() + report.total_dropped();
    assert_eq!(total as usize, workload.len());
    if report.total_completed() > 50 {
        let f = &report.functions[0];
        let warm_ok = f.completed - f.violations;
        assert!(warm_ok > 0, "BERT never met 150 ms even warm");
    }
}

#[test]
fn mixed_application_shares_the_cluster() {
    let app = Application::combined();
    let duration = SimDuration::from_secs(60);
    let loads: Vec<FunctionLoad> = app
        .functions()
        .iter()
        .map(|_| FunctionLoad::constant(30.0, duration))
        .collect();
    let workload = Workload::build(&loads, 90);
    let report = InflessPlatform::new(
        ClusterSpec::testbed(),
        app.functions().to_vec(),
        InflessConfig::default(),
        90,
    )
    .run(&workload);
    // Every function makes progress.
    for f in &report.functions {
        assert!(
            f.completed > 1000,
            "{} starved: {} completed",
            f.name,
            f.completed
        );
    }
    assert!(report.violation_rate() < 0.08);
}

#[test]
fn memory_tight_cluster_degrades_gracefully() {
    // Enough CPU/GPU for the load, but memory for only ~3 instances of
    // the model: the platform must serve what fits and drop the rest
    // rather than over-pack or crash.
    let spec = ModelId::ResNet50.spec();
    let per_instance_mb = spec.size_mb() + 150.0;
    let functions = vec![FunctionInfo::new(spec, SimDuration::from_millis(200))];
    let cluster = ClusterSpec {
        servers: 2,
        cores_per_server: 32,
        gpus_per_server: 2,
        mem_per_server_mb: per_instance_mb * 1.6,
        gpu_mem_per_device_mb: 0.0,
    };
    let loads = vec![FunctionLoad::constant(2000.0, SimDuration::from_secs(20))];
    let workload = Workload::build(&loads, 44);
    let report =
        InflessPlatform::new(cluster, functions, InflessConfig::default(), 44).run(&workload);
    let total = report.total_completed() + report.total_dropped();
    assert_eq!(total as usize, workload.len(), "every request accounted");
    assert!(report.total_completed() > 0, "some capacity fits");
    assert!(
        report.total_dropped() > 0,
        "the memory wall must force drops at this load"
    );
    // Never more instances alive than memory allows (1 per server here).
    assert!(report.launches <= 8, "launches {}", report.launches);
}
