//! The GPU memory tier's two load-bearing invariants, end to end:
//! a disabled tier changes nothing (bit for bit), and an enabled tier
//! survives sharded execution byte-identically at every shard count.

use infless::descriptor::Scenario;
use infless::{ResidencyConfig, RunConfig};

fn swap_sweep_json() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join("swap_sweep.json");
    std::fs::read_to_string(path).expect("shipped swap scenario")
}

/// With the tier disabled, the engine must be the pre-tier engine:
/// omitting the residency block, writing it disabled, and forcing it
/// off through the run config all produce one byte-identical report
/// with zero swap launches. (The same scenario was byte-diffed against
/// the pre-tier seed binary when the tier landed; this pins the
/// equivalence the repo can check by itself.)
#[test]
fn disabled_residency_is_bit_identical_to_no_residency() {
    let json = swap_sweep_json();
    let enabled_block = r#""residency": { "enabled": true },"#;
    assert!(json.contains(enabled_block), "scenario shape changed");

    let absent = Scenario::from_json(&json.replace(enabled_block, ""))
        .unwrap()
        .execute(RunConfig::new())
        .unwrap();
    let disabled =
        Scenario::from_json(&json.replace(enabled_block, r#""residency": { "enabled": false },"#))
            .unwrap()
            .execute(RunConfig::new())
            .unwrap();
    let overridden = Scenario::from_json(&json)
        .unwrap()
        .execute(RunConfig::new().residency(ResidencyConfig::default()))
        .unwrap();

    assert_eq!(absent.swap_launches, 0, "no tier, no swaps");
    assert_eq!(absent.canonical_json(), disabled.canonical_json());
    assert_eq!(absent.canonical_json(), overridden.canonical_json());

    // And the tier, when it is on, is not a no-op on this workload.
    let enabled = Scenario::from_json(&json)
        .unwrap()
        .execute(RunConfig::new())
        .unwrap();
    assert!(
        enabled.swap_launches > 0,
        "swap scenario exercised no swaps"
    );
    assert_ne!(absent.canonical_json(), enabled.canonical_json());
}

/// The shipped swap scenario — residency tier on, faults firing — must
/// replay byte-identically through the epoch-barrier driver at every
/// shard count. This is the surface the CI determinism gate diffs.
#[test]
fn swap_scenario_is_shard_count_invariant() {
    let s = Scenario::from_json(&swap_sweep_json()).unwrap();
    let r1 = s.execute(RunConfig::new().shards(1)).unwrap();
    let r4 = s.execute(RunConfig::new().shards(4)).unwrap();
    assert!(r1.swap_launches > 0, "determinism gate must cover swaps");
    assert!(
        r1.failures.server_crashes > 0,
        "determinism gate must cover faults"
    );
    assert_eq!(r1.canonical_json(), r4.canonical_json());
}
