//! End-to-end checks of the telemetry subsystem against the shipped
//! failure scenario: the JSONL trace a real run writes must parse,
//! conserve every arrival, annotate displaced requests with their
//! fault, and let `displaced == retried + shed` be recomputed from the
//! spans alone. The CSV time-series must carry the documented header
//! and one row per scaler tick.

use std::fs;
use std::io::BufRead;

use infless::descriptor::Scenario;
use infless::telemetry::{summarize_file, FileSink, MemorySink, NullSink, SpanKind};
use infless::RunConfig;

fn scenario() -> Scenario {
    Scenario::from_file("scenarios/failure_sweep.json").expect("shipped scenario parses")
}

#[test]
fn failure_sweep_trace_is_parseable_and_consistent() {
    let dir = std::env::temp_dir().join("infless-telemetry-e2e");
    fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.jsonl");
    let gauges = dir.join("gauges.csv");

    let sink = FileSink::create(Some(&trace), Some(&gauges)).unwrap();
    let report = scenario()
        .execute(RunConfig::new().telemetry(Box::new(sink)))
        .unwrap();

    let summary = summarize_file(&trace).expect("trace parses and validates");
    assert_eq!(summary.platform, "INFless");
    assert!(summary.conserved(), "spans lost an arrival: {summary}");
    assert!(
        summary.displacement_balanced(),
        "displaced != retried + shed from spans alone: {summary}"
    );
    // The spans agree with the collector's counters.
    assert_eq!(summary.completed, report.total_completed());
    assert_eq!(summary.dropped + summary.shed, report.total_dropped());
    assert_eq!(summary.displaced, report.failures.requests_displaced);
    assert_eq!(summary.retried, report.failures.requests_retried);
    // Faults actually fired, and every displacement names its fault.
    assert!(summary.displaced > 0, "scenario displaced nothing");
    assert_eq!(
        summary.displaced_by_fault.values().sum::<u64>(),
        summary.displaced
    );
    assert!(!summary.displaced_by_fault.contains_key("none"));

    // CSV schema: documented header, then one numeric row per sample.
    let csv = fs::read_to_string(&gauges).unwrap();
    let mut lines = csv.lines();
    let header = lines.next().expect("non-empty csv");
    assert!(header.starts_with(
        "t_s,instances,starting,cpu_occupancy,gpu_occupancy,queue_depth,in_flight_batches"
    ));
    let cols = header.split(',').count();
    let mut rows = 0usize;
    for line in lines {
        assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        for field in line.split(',') {
            field.parse::<f64>().expect("numeric field");
        }
        rows += 1;
    }
    assert!(rows > 0, "no gauge rows written");
    assert_eq!(rows as u64, report.timeseries_summary.samples);
}

#[test]
fn trace_latency_histogram_matches_report_percentiles() {
    let sink = MemorySink::new();
    let report = scenario()
        .execute(RunConfig::new().telemetry(Box::new(sink.clone())))
        .unwrap();
    let store = sink.store();
    // Completion spans equal the report's completed count, so the
    // trace alone reproduces the latency distribution.
    let completes = store
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Complete)
        .count() as u64;
    assert_eq!(completes, report.total_completed());
}

#[test]
fn null_sink_run_matches_plain_run() {
    let plain = scenario().execute(RunConfig::new()).unwrap();
    let nulled = scenario()
        .execute(RunConfig::new().telemetry(Box::new(NullSink)))
        .unwrap();
    assert_eq!(plain.total_completed(), nulled.total_completed());
    assert_eq!(plain.total_dropped(), nulled.total_dropped());
    assert_eq!(plain.launches, nulled.launches);
    assert_eq!(plain.failures, nulled.failures);
    assert_eq!(
        plain.weighted_resource_seconds.to_bits(),
        nulled.weighted_resource_seconds.to_bits()
    );
}

#[test]
fn every_jsonl_line_is_an_object_with_fixed_keys() {
    let dir = std::env::temp_dir().join("infless-telemetry-e2e-schema");
    fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.jsonl");
    let sink = FileSink::create(Some(&trace), None).unwrap();
    scenario()
        .execute(RunConfig::new().telemetry(Box::new(sink)))
        .unwrap();

    let file = fs::File::open(&trace).unwrap();
    let mut lines = std::io::BufReader::new(file).lines();
    let meta: serde_json::Value = serde_json::from_str(&lines.next().unwrap().unwrap()).unwrap();
    assert!(meta.get("meta").is_some());
    for line in lines {
        let v: serde_json::Value = serde_json::from_str(&line.unwrap()).expect("valid json");
        for key in ["t_s", "kind", "req", "fn", "inst", "srv", "batch", "fault"] {
            assert!(v.get(key).is_some(), "span line missing {key}");
        }
    }
}
