//! Vendored, minimal replacement for the parts of `criterion` 0.5 this
//! workspace uses. The build environment has no network access to
//! crates.io. No statistical analysis or HTML reports — each
//! `bench_function` runs a warm-up, then times `sample_size` samples and
//! prints min/mean/max per iteration.

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortises setup cost. This harness sizes batches
/// the same way for both variants; the distinction only matters for
/// upstream criterion's memory strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small: many routine calls per setup.
    SmallInput,
    /// Setup output is large: one routine call per setup.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Wall-clock budget for the measurement phase.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Wall-clock budget for the warm-up phase.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Passed to the closure of [`Criterion::bench_function`]; runs and
/// times the workload.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Per-iteration durations of each timed sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and calibrate iterations per sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }

    /// Times `routine` on inputs produced by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: one input to estimate cost.
        let warm_start = Instant::now();
        black_box(routine(setup()));
        let per_iter = warm_start.elapsed().as_secs_f64();
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-12)) as u64).clamp(1, 100_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self
            .samples
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{name:<40} time: [{} {} {}]",
            format_time(min),
            format_time(mean),
            format_time(max)
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Declares a benchmark group: either
/// `criterion_group!(name, target, …)` or
/// `criterion_group! { name = n; config = expr; targets = t, … }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
