//! Collection strategies (`prop::collection::vec`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A length specification for [`vec`]: an exact size or a half-open
/// range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec size range");
        SizeRange {
            lo: range.start,
            hi: range.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *range.start(),
            hi: *range.end() + 1,
        }
    }
}

/// A strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
