//! Vendored, minimal property-testing harness mirroring the subset of
//! `proptest` 1.x this workspace uses. The build environment has no
//! network access to crates.io.
//!
//! Semantics: each `proptest!` test runs `ProptestConfig::cases`
//! deterministic random cases (seeded from the test's name, so runs are
//! reproducible). There is **no shrinking** — a failing case panics with
//! the generated inputs' debug representation instead of a minimised
//! counterexample.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use strategy::{Just, Strategy};

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary_sample(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_sample(rng: &mut StdRng) -> Self {
        rand::Rng::gen_bool(rng, 0.5)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_sample(rng: &mut StdRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_sample(rng: &mut StdRng) -> Self {
        rand::Rng::gen_range(rng, -1e9..1e9)
    }
}

/// The canonical strategy for `T` (used as `any::<bool>()`).
pub fn any<T: Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy::new()
}

/// Seeds the per-test RNG from the test name (deterministic, FNV-1a).
#[doc(hidden)]
pub fn __seed_rng(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// Everything a `use proptest::prelude::*;` consumer expects in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec`,
    /// `prop::sample::select`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property tests: `proptest! { #[test] fn name(x in strategy)
/// { body } }` with an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg_pat:pat in $arg_strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::__seed_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __values = ( $(
                    $crate::strategy::Strategy::generate(&($arg_strat), &mut __rng),
                )* );
                let __debug = format!("{:?}", __values);
                let ( $($arg_pat,)* ) = __values;
                let __run = ::std::panic::AssertUnwindSafe(move || { $body });
                if let Err(__panic) = ::std::panic::catch_unwind(__run) {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed with inputs {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __debug
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            panic!(
                "prop_assert_eq failed: `{}` == `{}` ({:?} vs {:?})",
                stringify!($left), stringify!($right), __l, __r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            panic!($($fmt)+);
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            panic!(
                "prop_assert_ne failed: `{}` != `{}` (both {:?})",
                stringify!($left),
                stringify!($right),
                __l
            );
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (No global rejection budget: the case simply counts as passed.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// A strategy choosing uniformly among the listed strategies (which may
/// have different concrete types, as long as their `Value`s agree).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![ $( $crate::strategy::boxed($strat) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        A(u32),
        B,
    }

    fn pick() -> impl Strategy<Value = Pick> {
        prop_oneof![(1u32..5).prop_map(Pick::A), Just(Pick::B),]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(xs in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn select_picks_members(b in prop::sample::select(vec![1u32, 2, 4, 8])) {
            prop_assert!([1, 2, 4, 8].contains(&b));
        }

        #[test]
        fn oneof_and_map_work(p in pick(), flag in any::<bool>()) {
            match p {
                Pick::A(v) => prop_assert!((1..5).contains(&v)),
                Pick::B => prop_assert!(flag || !flag),
            }
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn exact_vec_size(rows in prop::collection::vec(prop::collection::vec(0u64..3, 5), 1..4)) {
            for row in &rows {
                prop_assert_eq!(row.len(), 5);
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = crate::__seed_rng("some::test");
        let mut b = crate::__seed_rng("some::test");
        let s = 0u64..1000;
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
