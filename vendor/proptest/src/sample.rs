//! Sampling strategies (`prop::sample::select`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A strategy choosing uniformly from a fixed list.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "cannot select from an empty list");
    Select { items }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.items.len());
        self.items[idx].clone()
    }
}
