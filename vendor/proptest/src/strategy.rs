//! The `Strategy` trait and combinators.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying a bounded number of
    /// times (panics if the predicate is satisfied too rarely).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            strategy: self,
            pred,
            whence,
        }
    }

    /// Boxes the strategy (see [`boxed`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, object-safe strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Boxes a strategy; used by `prop_oneof!` to unify branch types.
pub fn boxed<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
    Box::new(strategy)
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    strategy: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.strategy.generate(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// Uniform choice among boxed strategies (see `prop_oneof!`).
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union; panics if no branches are given.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.branches.len());
        self.branches[idx].generate(rng)
    }
}

/// See [`crate::any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> AnyStrategy<T> {
    pub(crate) fn new() -> Self {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: crate::Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary_sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
