//! Test-runner configuration.

/// How many random cases each property test runs.
///
/// Upstream proptest defaults to 256; this harness defaults to 64 to
/// keep the (simulation-heavy) suite quick while still exploring a
/// meaningful slice of the input space. Override per block with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}
