//! Distributions: the `Standard` uniform-bits distribution and the
//! iterator adaptor returned by `Rng::sample_iter`.

use core::marker::PhantomData;

use crate::{unit_f64, RngCore};

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;

    /// An infinite iterator of draws, consuming `rng`.
    fn sample_iter<R: RngCore>(self, rng: R) -> DistIter<Self, R, T>
    where
        Self: Sized,
    {
        DistIter::new(self, rng)
    }
}

/// The "natural" uniform distribution of each primitive: full bit range
/// for integers, `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f64(rng) as f32
    }
}

/// Iterator over draws from a distribution (see
/// [`Distribution::sample_iter`]).
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    dist: D,
    rng: R,
    _marker: PhantomData<T>,
}

impl<D, R, T> DistIter<D, R, T> {
    pub(crate) fn new(dist: D, rng: R) -> Self {
        DistIter {
            dist,
            rng,
            _marker: PhantomData,
        }
    }
}

impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.dist.sample(&mut self.rng))
    }
}
