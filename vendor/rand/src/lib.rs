//! Vendored, dependency-free replacement for the parts of `rand` 0.8 this
//! workspace uses. The build environment has no network access to
//! crates.io, so the workspace pins `rand = { path = "vendor/rand" }`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every consumer in this
//! repository only requires determinism for a fixed seed, which this
//! provides. The API mirrors the subset actually used: `Rng::{gen,
//! gen_range, gen_bool, sample, sample_iter}`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, and `distributions::{Distribution, Standard}`.

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types uniformly samplable from a bounded range. The blanket
/// [`SampleRange`] impls below delegate here; keeping them blanket (one
/// impl per range shape, generic over `T`) lets integer-literal ranges
/// unify with surrounding inference the way upstream `rand` does.
pub trait SampleUniform: Sized {
    /// A uniform draw from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_uniform(start, end, true, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (high as u128)
                    .wrapping_sub(low as u128)
                    .wrapping_add(u128::from(inclusive));
                let draw = (rng.next_u64() as u128) % span;
                (low as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                low + (high - low) * unit_f64(rng) as $t
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// A uniform draw in `[0, 1)` with 53 bits of precision.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value of `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self) < p
    }

    /// A value drawn from `dist`.
    fn sample<T, D: Distribution<T>>(&mut self, dist: D) -> T {
        dist.sample(self)
    }

    /// An infinite iterator of draws from `dist`, consuming the RNG.
    fn sample_iter<T, D: Distribution<T>>(self, dist: D) -> distributions::DistIter<D, Self, T>
    where
        Self: Sized,
    {
        distributions::DistIter::new(dist, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&y));
            let z: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&z));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 produced {hits}/10000");
    }

    #[test]
    fn sample_iter_streams_standard() {
        let rng = StdRng::seed_from_u64(5);
        let xs: Vec<u32> = rng.sample_iter(Standard).take(4).collect();
        let ys: Vec<u32> = StdRng::seed_from_u64(5)
            .sample_iter(Standard)
            .take(4)
            .collect();
        assert_eq!(xs, ys);
    }
}
