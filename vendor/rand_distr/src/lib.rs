//! Vendored, dependency-free replacement for the parts of `rand_distr`
//! 0.4 this workspace uses (the Poisson distribution). The build
//! environment has no network access to crates.io.

use rand::{Rng, RngCore};

pub use rand::distributions::Distribution;

/// Error cases of [`Poisson::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoissonError {
    /// `lambda` was not a finite positive number.
    ShapeTooSmall,
}

impl std::fmt::Display for PoissonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("lambda must be a finite positive number")
    }
}

impl std::error::Error for PoissonError {}

/// The Poisson distribution `Poisson(λ)`, sampling `f64` counts like
/// upstream `rand_distr`.
///
/// Small rates use Knuth's product-of-uniforms method (exact); large
/// rates (λ > 30) use the normal approximation with continuity
/// correction, which is accurate to well under a percent there and keeps
/// sampling O(1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates the distribution.
    pub fn new(lambda: f64) -> Result<Self, PoissonError> {
        if lambda.is_finite() && lambda > 0.0 {
            Ok(Poisson { lambda })
        } else {
            Err(PoissonError::ShapeTooSmall)
        }
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda <= 30.0 {
            // Knuth: count uniforms until their product drops below e^-λ.
            let limit = (-self.lambda).exp();
            let mut product: f64 = 1.0;
            let mut count: u64 = 0;
            loop {
                product *= rng.gen_range(0.0f64..1.0);
                if product <= limit {
                    return count as f64;
                }
                count += 1;
            }
        } else {
            // Normal approximation N(λ, λ) via Box-Muller.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0f64..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (self.lambda + self.lambda.sqrt() * z + 0.5)
                .floor()
                .max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(lambda: f64, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(11);
        let dist = Poisson::new(lambda).unwrap();
        (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn rejects_bad_lambda() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
    }

    #[test]
    fn small_lambda_mean_matches() {
        let m = mean_of(3.0, 20_000);
        assert!((m - 3.0).abs() < 0.1, "mean {m} far from 3.0");
    }

    #[test]
    fn large_lambda_mean_matches() {
        let m = mean_of(200.0, 20_000);
        assert!((m - 200.0).abs() < 2.0, "mean {m} far from 200");
    }

    #[test]
    fn samples_are_nonnegative_integers() {
        let mut rng = StdRng::seed_from_u64(13);
        let dist = Poisson::new(50.0).unwrap();
        for _ in 0..1000 {
            let x = dist.sample(&mut rng);
            assert!(x >= 0.0 && x.fract() == 0.0, "bad sample {x}");
        }
    }
}
