//! `Serialize`/`Deserialize` implementations for std types.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::Hash;

use crate::{Deserialize, Error, Map, Number, Serialize, Value};

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, found {}", value.kind())))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, found {}", value.kind())))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected char, found {}", value.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

macro_rules! serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value.as_u64().ok_or_else(|| {
                    Error::custom(format!(
                        "expected unsigned integer, found {}", value.kind()
                    ))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, found {}", value.kind()))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

serde_signed!(i8, i16, i32, i64, isize);

macro_rules! serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                value.as_f64().map(|v| v as $t).ok_or_else(|| {
                    Error::custom(format!("expected number, found {}", value.kind()))
                })
            }
        }
    )*};
}

serde_float!(f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", value.kind())))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Vec::<T>::deserialize(value).map(VecDeque::from)
    }
}

// Maps serialize as arrays of [key, value] pairs so non-string keys
// (tuples, derived structs) survive the round trip — see crate docs.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(value: &Value) -> Result<Self, Error> {
        deserialize_pairs(value)?.collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        deserialize_pairs(value)?.collect()
    }
}

fn deserialize_pairs<'a, K: Deserialize + 'a, V: Deserialize + 'a>(
    value: &'a Value,
) -> Result<impl Iterator<Item = Result<(K, V), Error>> + 'a, Error> {
    let items = value.as_array().ok_or_else(|| {
        Error::custom(format!(
            "expected map (array of pairs), found {}",
            value.kind()
        ))
    })?;
    Ok(items.iter().map(|pair| match pair.as_array() {
        Some([k, v]) => Ok((K::deserialize(k)?, V::deserialize(v)?)),
        _ => Err(Error::custom("expected a [key, value] pair")),
    }))
}

impl Serialize for Map {
    fn serialize(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Deserialize for Map {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .cloned()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", value.kind())))
    }
}

macro_rules! serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $( + { let _ = $idx; 1 } )+;
                let items = value.as_array().ok_or_else(|| {
                    Error::custom(format!("expected tuple array, found {}", value.kind()))
                })?;
                if items.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected tuple of length {LEN}, found {}", items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&(-7i32).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(String::deserialize(&"hi".serialize()).unwrap(), "hi");
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);

        let mut m = HashMap::new();
        m.insert((1u32, 2u32), 3.5f64);
        let back: HashMap<(u32, u32), f64> = HashMap::deserialize(&m.serialize()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn mismatches_error() {
        assert!(u32::deserialize(&Value::String("x".into())).is_err());
        assert!(Vec::<u32>::deserialize(&Value::Bool(true)).is_err());
        assert!(u8::deserialize(&300u64.serialize()).is_err());
    }
}
