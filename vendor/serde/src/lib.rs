//! Vendored, dependency-light replacement for the subset of `serde` this
//! workspace uses. The build environment has no network access to
//! crates.io, so the workspace pins `serde = { path = "vendor/serde" }`.
//!
//! Instead of upstream serde's visitor architecture, this stub uses a
//! concrete JSON-like data model: [`Serialize`] produces a [`Value`] tree
//! and [`Deserialize`] consumes one. `serde_json` (also vendored) adds
//! the text layer on top. The derive macros in the vendored
//! `serde_derive` generate impls against these simplified traits and
//! support the attribute subset the workspace uses: `rename_all =
//! "lowercase"`, `deny_unknown_fields`, `default`, `default = "path"`,
//! and `tag = "..."` internally-tagged enums.
//!
//! One deliberate divergence from JSON: maps serialize as arrays of
//! `[key, value]` pairs so non-string keys (tuples, structs) round-trip
//! losslessly without a string encoding.

mod impls;
mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Deserialization (and serialization) error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the data model.
    fn serialize(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes an instance, reporting structural mismatches as
    /// [`Error`]s.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Namespace mirror of `serde::de` so code written against upstream
/// paths (`serde::de::Error` bounds, etc.) keeps compiling.
pub mod de {
    pub use crate::{Deserialize, Error};
}

/// Namespace mirror of `serde::ser`.
pub mod ser {
    pub use crate::{Error, Serialize};
}
