//! The concrete data model: a JSON-shaped tree.

/// A JSON-like value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A number (integer or float, see [`Number`]).
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A key-ordered object.
    Object(Map),
}

impl Value {
    /// The value as `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as a bool if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` for other variants or missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A JSON number: unsigned / signed integer or float, mirroring
/// `serde_json::Number` so 64-bit integers round-trip exactly.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl Number {
    /// Lossy conversion to `f64`.
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// Exact conversion to `u64` where possible.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(_) => None,
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// Exact conversion to `i64` where possible.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// An insertion-ordered string-keyed map, mirroring `serde_json::Map`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Inserts a key, replacing (in place) any existing entry.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// `true` if the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;

    fn into_iter(self) -> Self::IntoIter {
        fn split(pair: &(String, Value)) -> (&String, &Value) {
            (&pair.0, &pair.1)
        }
        self.entries.iter().map(split)
    }
}
