//! Vendored `serde_derive` replacement: generates impls of the
//! simplified `serde::Serialize` / `serde::Deserialize` traits (see the
//! vendored `serde` crate) for the item shapes this workspace uses —
//! named/tuple/unit structs and enums with unit, newtype, tuple, and
//! struct variants. Supported attributes: `#[serde(rename_all =
//! "lowercase")]`, `#[serde(deny_unknown_fields)]`, `#[serde(default)]`
//! (container and field), `#[serde(default = "path")]`, and
//! `#[serde(tag = "...")]` internally-tagged enums.
//!
//! Parsing is hand-rolled over `proc_macro::TokenStream` (no syn/quote:
//! the build environment is offline); generics are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

mod parse;

use parse::{ContainerAttrs, Data, FieldAttrs, Input, VariantKind};

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse::parse(input);
    generate_serialize(&item)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse::parse(input);
    generate_deserialize(&item)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

fn rename(attrs: &ContainerAttrs, ident: &str) -> String {
    if attrs.rename_all_lowercase {
        ident.to_lowercase()
    } else {
        ident.to_string()
    }
}

// ---------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------

fn generate_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            let mut out = String::from("let mut __map = serde::Map::new();\n");
            for f in fields {
                out.push_str(&format!(
                    "__map.insert(::std::string::String::from(\"{key}\"), \
                     serde::Serialize::serialize(&self.{field}));\n",
                    key = f.name,
                    field = f.name,
                ));
            }
            out.push_str("serde::Value::Object(__map)");
            out
        }
        Data::TupleStruct(1) => "serde::Serialize::serialize(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Data::UnitStruct => "serde::Value::Null".to_string(),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let tag = rename(&item.attrs, &v.name);
                let arm = match (&v.kind, &item.attrs.tag) {
                    (VariantKind::Unit, None) => format!(
                        "{name}::{v} => serde::Value::String(::std::string::String::from(\"{tag}\")),\n",
                        v = v.name,
                    ),
                    (VariantKind::Unit, Some(tag_key)) => format!(
                        "{name}::{v} => {{\n\
                         let mut __map = serde::Map::new();\n\
                         __map.insert(::std::string::String::from(\"{tag_key}\"), \
                         serde::Value::String(::std::string::String::from(\"{tag}\")));\n\
                         serde::Value::Object(__map)\n}}\n",
                        v = v.name,
                    ),
                    (VariantKind::Newtype, None) => format!(
                        "{name}::{v}(__f0) => {{\n\
                         let mut __map = serde::Map::new();\n\
                         __map.insert(::std::string::String::from(\"{tag}\"), \
                         serde::Serialize::serialize(__f0));\n\
                         serde::Value::Object(__map)\n}}\n",
                        v = v.name,
                    ),
                    (VariantKind::Tuple(n), None) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::serialize({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => {{\n\
                             let mut __map = serde::Map::new();\n\
                             __map.insert(::std::string::String::from(\"{tag}\"), \
                             serde::Value::Array(vec![{items}]));\n\
                             serde::Value::Object(__map)\n}}\n",
                            v = v.name,
                            binds = binds.join(", "),
                            items = items.join(", "),
                        )
                    }
                    (VariantKind::Struct(fields), tag_attr) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from("let mut __map = serde::Map::new();\n");
                        if let Some(tag_key) = tag_attr {
                            inner.push_str(&format!(
                                "__map.insert(::std::string::String::from(\"{tag_key}\"), \
                                 serde::Value::String(::std::string::String::from(\"{tag}\")));\n",
                            ));
                        }
                        for f in fields {
                            inner.push_str(&format!(
                                "__map.insert(::std::string::String::from(\"{key}\"), \
                                 serde::Serialize::serialize({field}));\n",
                                key = f.name,
                                field = f.name,
                            ));
                        }
                        if tag_attr.is_some() {
                            inner.push_str("serde::Value::Object(__map)");
                            format!(
                                "{name}::{v} {{ {binds} }} => {{\n{inner}\n}}\n",
                                v = v.name,
                                binds = binds.join(", "),
                            )
                        } else {
                            inner.push_str(&format!(
                                "let mut __outer = serde::Map::new();\n\
                                 __outer.insert(::std::string::String::from(\"{tag}\"), \
                                 serde::Value::Object(__map));\n\
                                 serde::Value::Object(__outer)",
                            ));
                            format!(
                                "{name}::{v} {{ {binds} }} => {{\n{inner}\n}}\n",
                                v = v.name,
                                binds = binds.join(", "),
                            )
                        }
                    }
                    (VariantKind::Newtype | VariantKind::Tuple(_), Some(_)) => panic!(
                        "serde_derive (vendored): tuple variants are not supported in \
                         internally-tagged enums ({name}::{})",
                        v.name
                    ),
                };
                arms.push_str(&arm);
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
         fn serialize(&self) -> serde::Value {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------

/// The `None => …` arm for a missing field.
fn missing_field_expr(
    container: &ContainerAttrs,
    f_attrs: &FieldAttrs,
    field: &str,
    container_name: &str,
) -> String {
    match &f_attrs.default {
        Some(Some(path)) => format!("{path}()"),
        Some(None) => "::core::default::Default::default()".to_string(),
        None if container.default => format!("__dflt.{field}"),
        None => format!(
            "return ::core::result::Result::Err(serde::Error::custom(\
             \"missing field `{field}` in {container_name}\"))"
        ),
    }
}

/// Generates the body that parses `__obj` (a `&serde::Map`) into the
/// given named fields, honouring defaults and unknown-field policy.
/// `skip_key` is the enum tag key to ignore, if any.
fn named_fields_body(
    item_name: &str,
    constructor: &str,
    fields: &[parse::Field],
    attrs: &ContainerAttrs,
    skip_key: Option<&str>,
) -> String {
    let mut out = String::new();
    if attrs.default {
        out.push_str(&format!(
            "let __dflt: {item_name} = ::core::default::Default::default();\n"
        ));
    }
    for (i, _f) in fields.iter().enumerate() {
        out.push_str(&format!("let mut __f{i} = ::core::option::Option::None;\n"));
    }
    out.push_str("for (__key, __val) in __obj.iter() {\nmatch __key.as_str() {\n");
    if let Some(tag_key) = skip_key {
        out.push_str(&format!("\"{tag_key}\" => {{}}\n"));
    }
    for (i, f) in fields.iter().enumerate() {
        out.push_str(&format!(
            "\"{key}\" => {{ __f{i} = ::core::option::Option::Some(\
             serde::Deserialize::deserialize(__val)?); }}\n",
            key = f.name,
        ));
    }
    if attrs.deny_unknown_fields {
        out.push_str(&format!(
            "__other => return ::core::result::Result::Err(serde::Error::custom(\
             format!(\"unknown field `{{}}` in {item_name}\", __other))),\n"
        ));
    } else {
        out.push_str("_ => {}\n");
    }
    out.push_str("}\n}\n");
    out.push_str(&format!("::core::result::Result::Ok({constructor} {{\n"));
    for (i, f) in fields.iter().enumerate() {
        let missing = missing_field_expr(attrs, &f.attrs, &f.name, item_name);
        out.push_str(&format!(
            "{field}: match __f{i} {{ ::core::option::Option::Some(__v) => __v, \
             ::core::option::Option::None => {missing} }},\n",
            field = f.name,
        ));
    }
    out.push_str("})\n");
    out
}

fn expect_object(what: &str) -> String {
    format!(
        "let __obj = match __value {{\n\
         serde::Value::Object(__m) => __m,\n\
         __other => return ::core::result::Result::Err(serde::Error::custom(\
         format!(\"expected object for {what}, found {{}}\", __other.kind()))),\n\
         }};\n"
    )
}

fn generate_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            let mut out = expect_object(name);
            out.push_str(&named_fields_body(name, name, fields, &item.attrs, None));
            out
        }
        Data::TupleStruct(1) => {
            format!("::core::result::Result::Ok({name}(serde::Deserialize::deserialize(__value)?))")
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::deserialize(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __value.as_array().ok_or_else(|| serde::Error::custom(\
                 format!(\"expected array for {name}, found {{}}\", __value.kind())))?;\n\
                 if __items.len() != {n} {{\n\
                 return ::core::result::Result::Err(serde::Error::custom(\
                 format!(\"expected {n} elements for {name}, found {{}}\", __items.len())));\n\
                 }}\n\
                 ::core::result::Result::Ok({name}({items}))",
                items = items.join(", "),
            )
        }
        Data::UnitStruct => format!("::core::result::Result::Ok({name})"),
        Data::Enum(variants) => match &item.attrs.tag {
            Some(tag_key) => generate_tagged_enum_de(item, variants, tag_key),
            None => generate_external_enum_de(item, variants),
        },
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
         fn deserialize(__value: &serde::Value) -> ::core::result::Result<Self, serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}

fn generate_tagged_enum_de(item: &Input, variants: &[parse::Variant], tag_key: &str) -> String {
    let name = &item.name;
    let mut out = expect_object(name);
    out.push_str(&format!(
        "let __tag = __obj.get(\"{tag_key}\").and_then(|__v| __v.as_str()).ok_or_else(|| \
         serde::Error::custom(\"missing or non-string tag `{tag_key}` in {name}\"))?;\n\
         match __tag {{\n"
    ));
    for v in variants {
        let tag = rename(&item.attrs, &v.name);
        match &v.kind {
            VariantKind::Unit => {
                // Still police unknown fields next to the tag.
                let mut inner = String::new();
                if item.attrs.deny_unknown_fields {
                    inner.push_str(&format!(
                        "for (__key, _) in __obj.iter() {{\n\
                         if __key != \"{tag_key}\" {{\n\
                         return ::core::result::Result::Err(serde::Error::custom(\
                         format!(\"unknown field `{{}}` in {name}::{v}\", __key)));\n\
                         }}\n}}\n",
                        v = v.name,
                    ));
                }
                inner.push_str(&format!("::core::result::Result::Ok({name}::{})\n", v.name));
                out.push_str(&format!("\"{tag}\" => {{\n{inner}}}\n"));
            }
            VariantKind::Struct(fields) => {
                let ctor = format!("{name}::{}", v.name);
                let body = named_fields_body(
                    &format!("{name}::{}", v.name),
                    &ctor,
                    fields,
                    &item.attrs,
                    Some(tag_key),
                );
                out.push_str(&format!("\"{tag}\" => {{\n{body}}}\n"));
            }
            _ => panic!(
                "serde_derive (vendored): tuple variants are not supported in \
                 internally-tagged enums ({name}::{})",
                v.name
            ),
        }
    }
    out.push_str(&format!(
        "__other => ::core::result::Result::Err(serde::Error::custom(\
         format!(\"unknown {name} variant `{{}}`\", __other))),\n}}\n"
    ));
    out
}

fn generate_external_enum_de(item: &Input, variants: &[parse::Variant]) -> String {
    let name = &item.name;
    let unit: Vec<&parse::Variant> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .collect();
    let data: Vec<&parse::Variant> = variants
        .iter()
        .filter(|v| !matches!(v.kind, VariantKind::Unit))
        .collect();

    let mut out = String::from("match __value {\n");
    if !unit.is_empty() {
        out.push_str("serde::Value::String(__s) => match __s.as_str() {\n");
        for v in &unit {
            let tag = rename(&item.attrs, &v.name);
            out.push_str(&format!(
                "\"{tag}\" => ::core::result::Result::Ok({name}::{}),\n",
                v.name
            ));
        }
        out.push_str(&format!(
            "__other => ::core::result::Result::Err(serde::Error::custom(\
             format!(\"unknown {name} variant `{{}}`\", __other))),\n}},\n"
        ));
    }
    if !data.is_empty() {
        out.push_str(
            "serde::Value::Object(__m) if __m.len() == 1 => {\n\
             let (__k, __payload) = __m.iter().next().expect(\"len checked\");\n\
             match __k.as_str() {\n",
        );
        for v in &data {
            let tag = rename(&item.attrs, &v.name);
            match &v.kind {
                VariantKind::Newtype => out.push_str(&format!(
                    "\"{tag}\" => ::core::result::Result::Ok({name}::{v}(\
                     serde::Deserialize::deserialize(__payload)?)),\n",
                    v = v.name,
                )),
                VariantKind::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::deserialize(&__items[{i}])?"))
                        .collect();
                    out.push_str(&format!(
                        "\"{tag}\" => {{\n\
                         let __items = __payload.as_array().ok_or_else(|| serde::Error::custom(\
                         \"expected array payload for {name}::{v}\"))?;\n\
                         if __items.len() != {n} {{\n\
                         return ::core::result::Result::Err(serde::Error::custom(\
                         \"wrong tuple arity for {name}::{v}\"));\n}}\n\
                         ::core::result::Result::Ok({name}::{v}({items}))\n}}\n",
                        v = v.name,
                        items = items.join(", "),
                    ));
                }
                VariantKind::Struct(fields) => {
                    let ctor = format!("{name}::{}", v.name);
                    let mut body = String::from(
                        "let __obj = match __payload {\n\
                         serde::Value::Object(__m2) => __m2,\n\
                         __other => return ::core::result::Result::Err(serde::Error::custom(\
                         format!(\"expected object payload, found {}\", __other.kind()))),\n\
                         };\n",
                    );
                    body.push_str(&named_fields_body(
                        &format!("{name}::{}", v.name),
                        &ctor,
                        fields,
                        &item.attrs,
                        None,
                    ));
                    out.push_str(&format!("\"{tag}\" => {{\n{body}}}\n"));
                }
                VariantKind::Unit => unreachable!(),
            }
        }
        out.push_str(&format!(
            "__other => ::core::result::Result::Err(serde::Error::custom(\
             format!(\"unknown {name} variant `{{}}`\", __other))),\n}}\n}},\n"
        ));
    }
    out.push_str(&format!(
        "__other => ::core::result::Result::Err(serde::Error::custom(\
         format!(\"cannot deserialize {name} from {{}}\", __other.kind()))),\n}}\n"
    ));
    out
}

/// Shared helper for the parser module: is this token a `#`?
pub(crate) fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Shared helper for the parser module: the group if this token is one
/// with the given delimiter.
pub(crate) fn as_group(tt: &TokenTree, delim: Delimiter) -> Option<TokenStream> {
    match tt {
        TokenTree::Group(g) if g.delimiter() == delim => Some(g.stream()),
        _ => None,
    }
}
