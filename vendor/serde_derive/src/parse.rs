//! A small hand-rolled parser over `proc_macro::TokenStream` for the
//! item shapes the workspace derives serde on. Not a general Rust
//! parser: generics are rejected, and only the `#[serde(...)]`
//! attributes listed in the crate docs are understood.

use proc_macro::{Delimiter, TokenStream, TokenTree};

use crate::{as_group, is_punct};

/// Parsed derive input.
pub struct Input {
    pub name: String,
    pub attrs: ContainerAttrs,
    pub data: Data,
}

/// The shape of the item.
pub enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// One named field.
pub struct Field {
    pub name: String,
    pub attrs: FieldAttrs,
}

/// One enum variant.
pub struct Variant {
    pub name: String,
    pub kind: VariantKind,
}

/// Payload shape of a variant.
pub enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// Container-level `#[serde(...)]` switches.
#[derive(Default)]
pub struct ContainerAttrs {
    pub rename_all_lowercase: bool,
    pub deny_unknown_fields: bool,
    pub default: bool,
    pub tag: Option<String>,
}

/// Field-level `#[serde(...)]` switches. `default` is `Some(None)` for
/// bare `default` and `Some(Some(path))` for `default = "path"`.
#[derive(Default)]
pub struct FieldAttrs {
    pub default: Option<Option<String>>,
}

/// Raw key/value pairs out of one `#[serde(...)]` attribute.
#[derive(Default)]
struct RawSerdeAttrs {
    items: Vec<(String, Option<String>)>,
}

pub fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let mut attrs = ContainerAttrs::default();
    for raw in collect_attrs(&tokens, &mut pos) {
        for (key, value) in raw.items {
            match (key.as_str(), value) {
                ("rename_all", Some(style)) => {
                    assert_eq!(
                        style, "lowercase",
                        "serde_derive (vendored): only rename_all = \"lowercase\" is supported"
                    );
                    attrs.rename_all_lowercase = true;
                }
                ("deny_unknown_fields", None) => attrs.deny_unknown_fields = true,
                ("default", None) => attrs.default = true,
                ("tag", Some(tag)) => attrs.tag = Some(tag),
                (other, _) => {
                    panic!("serde_derive (vendored): unsupported container attribute `{other}`")
                }
            }
        }
    }

    skip_visibility(&tokens, &mut pos);
    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if pos < tokens.len() && is_punct(&tokens[pos], '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }

    let data = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(tt) if as_group(tt, Delimiter::Brace).is_some() => {
                let body = as_group(&tokens[pos], Delimiter::Brace).expect("checked");
                Data::NamedStruct(parse_named_fields(body))
            }
            Some(tt) if as_group(tt, Delimiter::Parenthesis).is_some() => {
                let body = as_group(&tokens[pos], Delimiter::Parenthesis).expect("checked");
                Data::TupleStruct(count_tuple_fields(body))
            }
            Some(tt) if is_punct(tt, ';') => Data::UnitStruct,
            other => panic!("serde_derive (vendored): unexpected struct body: {other:?}"),
        },
        "enum" => {
            let body = tokens
                .get(pos)
                .and_then(|tt| as_group(tt, Delimiter::Brace))
                .expect("serde_derive (vendored): enum must have a brace body");
            Data::Enum(parse_variants(body))
        }
        other => panic!("serde_derive (vendored): cannot derive for `{other}` items"),
    };

    Input { name, attrs, data }
}

/// Collects `#[serde(...)]` attributes at `pos`, skipping every other
/// attribute (doc comments, `#[allow]`, …).
fn collect_attrs(tokens: &[TokenTree], pos: &mut usize) -> Vec<RawSerdeAttrs> {
    let mut found = Vec::new();
    while *pos < tokens.len() && is_punct(&tokens[*pos], '#') {
        let group = tokens
            .get(*pos + 1)
            .and_then(|tt| as_group(tt, Delimiter::Bracket))
            .expect("`#` must be followed by a bracket group in attribute position");
        *pos += 2;
        let inner: Vec<TokenTree> = group.into_iter().collect();
        let is_serde =
            matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let args = inner
            .get(1)
            .and_then(|tt| as_group(tt, Delimiter::Parenthesis))
            .expect("#[serde] attribute must have parenthesised arguments");
        found.push(parse_serde_args(args));
    }
    found
}

/// Parses `key`, `key = "value"` pairs separated by commas.
fn parse_serde_args(args: TokenStream) -> RawSerdeAttrs {
    let tokens: Vec<TokenTree> = args.into_iter().collect();
    let mut raw = RawSerdeAttrs::default();
    let mut pos = 0;
    while pos < tokens.len() {
        let key = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive (vendored): expected attribute name, found {other}"),
        };
        pos += 1;
        let value = if pos < tokens.len() && is_punct(&tokens[pos], '=') {
            pos += 1;
            let lit = match &tokens[pos] {
                TokenTree::Literal(lit) => lit.to_string(),
                other => panic!("serde_derive (vendored): expected string value, found {other}"),
            };
            pos += 1;
            Some(lit.trim_matches('"').to_string())
        } else {
            None
        };
        raw.items.push((key, value));
        if pos < tokens.len() {
            assert!(
                is_punct(&tokens[pos], ','),
                "serde_derive (vendored): expected `,` between attribute arguments"
            );
            pos += 1;
        }
    }
    raw
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if tokens
            .get(*pos)
            .and_then(|tt| as_group(tt, Delimiter::Parenthesis))
            .is_some()
        {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde_derive (vendored): expected identifier, found {other:?}"),
    }
}

/// Skips tokens until a top-level `,` (angle-bracket depth aware, since
/// generic arguments contain commas outside any token group).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth: i64 = 0;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            tt if is_punct(tt, '<') => angle_depth += 1,
            tt if is_punct(tt, '>') => angle_depth -= 1,
            tt if is_punct(tt, ',') && angle_depth == 0 => return,
            _ => {}
        }
        *pos += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let mut attrs = FieldAttrs::default();
        for raw in collect_attrs(&tokens, &mut pos) {
            for (key, value) in raw.items {
                match key.as_str() {
                    "default" => attrs.default = Some(value),
                    other => {
                        panic!("serde_derive (vendored): unsupported field attribute `{other}`")
                    }
                }
            }
        }
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        assert!(
            pos < tokens.len() && is_punct(&tokens[pos], ':'),
            "serde_derive (vendored): expected `:` after field `{name}`"
        );
        pos += 1;
        skip_type(&tokens, &mut pos);
        if pos < tokens.len() && is_punct(&tokens[pos], ',') {
            pos += 1;
        }
        fields.push(Field { name, attrs });
    }
    fields
}

/// Counts tuple-struct / tuple-variant fields (top-level commas at
/// angle-bracket depth zero).
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        // Skip per-field attributes and visibility, then the type.
        let mut field_attr_pos = pos;
        let _ = collect_attrs(&tokens, &mut field_attr_pos);
        pos = field_attr_pos;
        skip_visibility(&tokens, &mut pos);
        skip_type(&tokens, &mut pos);
        count += 1;
        if pos < tokens.len() && is_punct(&tokens[pos], ',') {
            pos += 1;
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        // Variant-level serde attributes are not supported; doc comments
        // and other attributes are skipped.
        for raw in collect_attrs(&tokens, &mut pos) {
            if !raw.items.is_empty() {
                panic!("serde_derive (vendored): variant-level serde attributes are unsupported");
            }
        }
        let name = expect_ident(&tokens, &mut pos);
        let kind = match tokens.get(pos) {
            Some(tt) if as_group(tt, Delimiter::Brace).is_some() => {
                let fields =
                    parse_named_fields(as_group(&tokens[pos], Delimiter::Brace).expect("checked"));
                pos += 1;
                VariantKind::Struct(fields)
            }
            Some(tt) if as_group(tt, Delimiter::Parenthesis).is_some() => {
                let n = count_tuple_fields(
                    as_group(&tokens[pos], Delimiter::Parenthesis).expect("checked"),
                );
                pos += 1;
                if n == 1 {
                    VariantKind::Newtype
                } else {
                    VariantKind::Tuple(n)
                }
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if pos < tokens.len() && is_punct(&tokens[pos], '=') {
            pos += 1;
            while pos < tokens.len() && !is_punct(&tokens[pos], ',') {
                pos += 1;
            }
        }
        if pos < tokens.len() && is_punct(&tokens[pos], ',') {
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}
