//! Vendored, minimal replacement for the parts of `serde_json` this
//! workspace uses: `Value`/`Map` (re-exported from the vendored
//! `serde`, which defines the data model), `json!`, `from_str`,
//! `to_string`, `to_string_pretty`, and `to_value`.
//!
//! Divergence from upstream: maps with non-string keys serialize as
//! arrays of `[key, value]` pairs (see the vendored `serde` crate docs);
//! non-finite floats render as `null` like upstream serde_json.

mod read;
mod write;

pub use read::from_str;
pub use serde::{Error, Map, Number, Value};
pub use write::{to_string, to_string_pretty};

/// Namespace mirror of `serde_json::value`.
pub mod value {
    pub use serde::{Map, Number, Value};
}

/// Serializes any [`serde::Serialize`] type into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Deserializes a [`Value`] tree into any [`serde::Deserialize`] type.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value)
}

/// Builds a [`Value`] from JSON-looking syntax. Keys must be string
/// literals; values may be `null`, nested `[...]` / `{...}` literals, or
/// any Rust expression whose type implements `serde::Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __map = $crate::Map::new();
        $( __map.insert(::std::string::String::from($key), $crate::json!($val)); )*
        $crate::Value::Object(__map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let rows = vec![1u32, 2, 3];
        let v = json!({ "name": "x", "rows": rows, "none": Option::<f64>::None });
        assert_eq!(v.get("name").and_then(Value::as_str), Some("x"));
        assert_eq!(
            v.get("rows").and_then(Value::as_array).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(v.get("none"), Some(&Value::Null));
    }

    #[test]
    fn round_trip_through_text() {
        let v = json!({
            "a": 1u64,
            "b": -2i64,
            "c": 1.5f64,
            "s": "quo\"te\n",
            "arr": vec![true, false],
            "nested": json!({ "x": 9u8 })
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_plain_json() {
        let v: Value = from_str(r#"{"k": [1, 2.5, "s", null, true], "neg": -7}"#).unwrap();
        assert_eq!(v.get("neg").and_then(Value::as_i64), Some(-7));
        let arr = v.get("k").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[3], Value::Null);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("{\"a\": 1} trailing").is_err());
        assert!(from_str::<Value>("{'a': 1}").is_err());
    }

    #[test]
    fn escapes_survive() {
        let v: Value = from_str(r#""aA\n\t\\\"b""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\t\\\"b"));
    }
}
