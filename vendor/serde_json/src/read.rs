//! A recursive-descent JSON text parser producing [`Value`] trees.

use serde::{Deserialize, Error, Map, Number, Value};

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    T::deserialize(&value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are rare in this workspace's
                            // data; unpaired surrogates become U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.error("unknown escape character")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 encoded character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let ch = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("unterminated string"))?;
                    if ch.is_control() && ch != '\u{7f}' {
                        return Err(self.error("unescaped control character in string"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.error("invalid number"))
    }
}
