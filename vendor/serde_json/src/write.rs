//! JSON text output (compact and pretty).

use serde::{Error, Number, Serialize, Value};

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), None, 0, &mut out);
    Ok(out)
}

/// Serializes to pretty JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) if v.is_finite() => {
            let text = v.to_string();
            out.push_str(&text);
            // Keep floats recognisable as floats on re-parse.
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        // Like upstream serde_json: non-finite floats become null.
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
